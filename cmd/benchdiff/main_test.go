package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

func writeRecord(t *testing.T, rec *record) string {
	t.Helper()
	blob, err := json.Marshal(rec)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLoad(t *testing.T) {
	rec := &record{MaxProcs: 4, Benchmarks: []benchResult{
		{Name: "BenchmarkX", NsPerOp: 100, BytesPerOp: 800, AllocsPerOp: 2},
	}}
	got, err := load(writeRecord(t, rec))
	if err != nil {
		t.Fatal(err)
	}
	if got.MaxProcs != 4 || len(got.Benchmarks) != 1 || got.Benchmarks[0].NsPerOp != 100 {
		t.Fatalf("load round trip: %+v", got)
	}
	if _, err := load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(bad, []byte("{"), 0o644)
	if _, err := load(bad); err == nil {
		t.Fatal("malformed JSON accepted")
	}
}

func TestPct(t *testing.T) {
	if got := pct(100, 150); got != 50 {
		t.Fatalf("pct(100,150) = %v", got)
	}
	if got := pct(0, 150); got != 0 {
		t.Fatalf("pct(0,150) = %v", got)
	}
	if got := pct(200, 100); got != -50 {
		t.Fatalf("pct(200,100) = %v", got)
	}
}

// pairRecord is the BENCH_5-shaped fixture: suffix twins where f32
// halves B/op, one pair that misses the gate, and an unpaired row.
func pairRecord() *record {
	return &record{Benchmarks: []benchResult{
		{Name: "BenchmarkSpMM_f64", NsPerOp: 1000, BytesPerOp: 1000},
		{Name: "BenchmarkSpMM_f32", NsPerOp: 700, BytesPerOp: 500},
		{Name: "BenchmarkMatMul_f64", NsPerOp: 2000, BytesPerOp: 2000},
		{Name: "BenchmarkMatMul_f32", NsPerOp: 1800, BytesPerOp: 1900}, // only 5% drop
		{Name: "BenchmarkLonely_f64", NsPerOp: 10, BytesPerOp: 10},
		{Name: "BenchmarkOther", NsPerOp: 5, BytesPerOp: 5},
	}}
}

func TestRunPairModeGate(t *testing.T) {
	rec := pairRecord()
	// No gate: nothing fails.
	if got := runPairMode(rec, "_f64", "_f32", 0, -1, nil); got != 0 {
		t.Fatalf("ungated pair mode reported %d failures", got)
	}
	// 25%% gate: the MatMul pair (5%% drop) fails, SpMM (50%%) passes.
	if got := runPairMode(rec, "_f64", "_f32", 25, -1, nil); got != 1 {
		t.Fatalf("gated pair mode reported %d failures, want 1", got)
	}
}

func TestRunPairModeMatchFilter(t *testing.T) {
	rec := pairRecord()
	// Restricting to SpMM hides the failing MatMul pair.
	re := mustCompile(t, "SpMM")
	if got := runPairMode(rec, "_f64", "_f32", 25, -1, re); got != 0 {
		t.Fatalf("filtered pair mode reported %d failures, want 0", got)
	}
}

func mustCompile(t *testing.T, expr string) *regexp.Regexp {
	t.Helper()
	re, err := regexp.Compile(expr)
	if err != nil {
		t.Fatal(err)
	}
	return re
}

func TestRunPairModeNsGate(t *testing.T) {
	rec := pairRecord()
	// SpMM drops 30% ns, MatMul only 10%: a 20% ns gate fails one pair.
	if got := runPairMode(rec, "_f64", "_f32", 0, 20, nil); got != 1 {
		t.Fatalf("ns-gated pair mode reported %d failures, want 1", got)
	}
	// Gate 0 ("must not be slower") passes: both pairs improved.
	if got := runPairMode(rec, "_f64", "_f32", 0, 0, nil); got != 0 {
		t.Fatalf("ns>=0 gate reported %d failures, want 0", got)
	}
	// A pair where the new suffix regressed fails the 0 gate.
	rec.Benchmarks = append(rec.Benchmarks,
		benchResult{Name: "BenchmarkSlow_f64", NsPerOp: 100, BytesPerOp: 100},
		benchResult{Name: "BenchmarkSlow_f32", NsPerOp: 150, BytesPerOp: 10},
	)
	if got := runPairMode(rec, "_f64", "_f32", 0, 0, nil); got != 1 {
		t.Fatalf("regressed pair reported %d failures, want 1", got)
	}
}

func TestMaxNsDrop(t *testing.T) {
	oldBy := map[string]benchResult{
		"BenchmarkA": {Name: "BenchmarkA", NsPerOp: 1000},
		"BenchmarkB": {Name: "BenchmarkB", NsPerOp: 2000},
	}
	newBenches := []benchResult{
		{Name: "BenchmarkA", NsPerOp: 900},  // 10% drop
		{Name: "BenchmarkB", NsPerOp: 1000}, // 50% drop
		{Name: "BenchmarkC", NsPerOp: 5},    // unshared: ignored
	}
	best, name := maxNsDrop(oldBy, newBenches)
	if name != "BenchmarkB" || best != 50 {
		t.Fatalf("maxNsDrop = %.1f%% on %s, want 50%% on BenchmarkB", best, name)
	}
}
