// Command ablation runs the design-choice ablations DESIGN.md calls out:
// per-matrix vs coalesced all-reduce (§III-D), bulk batch count k
// (§IV-C), ShaDow fanout/depth, and training batch size.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"time"

	"repro"
)

func main() {
	exp := flag.String("exp", "allreduce", "experiment: allreduce | bulk | fanout | batchsize")
	scale := flag.Float64("scale", 0.03, "dataset scale factor")
	events := flag.Int("events", 4, "event graphs")
	epochs := flag.Int("epochs", 6, "epochs for quality ablations")
	seed := flag.Uint64("seed", 7, "seed")
	flag.Parse()

	o := repro.ExperimentOptions{
		Scale:           *scale,
		Events:          *events,
		Epochs:          *epochs,
		Hidden:          16,
		Steps:           3,
		Seed:            *seed,
		SamplerOverhead: 2 * time.Millisecond,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	var err error
	switch *exp {
	case "allreduce":
		fmt.Println("ABLATION §III-D: all-reduce strategy for the IGNN parameter set")
		var rows []repro.AllReduceRow
		rows, err = repro.AllReduceAblation(ctx, o, []int{2, 4, 8, 16}, 10)
		for _, r := range rows {
			fmt.Printf("  p=%-3d %-10s collectives=%-5d modeled=%v\n",
				r.Procs, r.Strategy, r.Collectives, r.ModeledTime)
		}
	case "bulk":
		fmt.Println("ABLATION §IV-C: bulk batch count k vs sampling time")
		var rows []repro.BulkKRow
		rows, err = repro.BulkKAblation(ctx, o, []int{1, 2, 4, 8, 16})
		for _, r := range rows {
			fmt.Printf("  k=%-3d sampler_calls=%-4d sampling=%-14v training=%v\n",
				r.K, r.SamplerCalls, r.Sampling.Round(time.Microsecond), r.Training.Round(time.Microsecond))
		}
	case "fanout":
		fmt.Println("ABLATION: ShaDow depth d / fanout s vs quality and cost")
		var rows []repro.FanoutRow
		rows, err = repro.FanoutAblation(ctx, o, [][2]int{{1, 4}, {2, 4}, {3, 6}, {2, 8}, {3, 8}})
		for _, r := range rows {
			fmt.Printf("  d=%d s=%d  precision=%.4f recall=%.4f epoch=%v\n",
				r.Depth, r.Fanout, r.Precision, r.Recall, r.EpochTime.Round(time.Millisecond))
		}
	case "batchsize":
		fmt.Println("ABLATION: batch size vs generalization (Keskar et al. argument)")
		var rows []repro.BatchSizeRow
		rows, err = repro.BatchSizeAblation(ctx, o, []int{32, 64, 128, 256, 512})
		for _, r := range rows {
			fmt.Printf("  batch=%-4d steps/epoch=%-4d precision=%.4f recall=%.4f f1=%.4f\n",
				r.BatchSize, r.StepsPerEpoch, r.Precision, r.Recall, r.F1)
		}
	default:
		fmt.Println("unknown -exp; choose allreduce | bulk | fanout | batchsize")
	}
	if err != nil {
		log.Fatalf("interrupted: %v", err)
	}
}
