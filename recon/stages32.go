package recon

import (
	"context"

	"repro/internal/detector"
	"repro/internal/kernels"
	"repro/internal/knnsearch"
	"repro/internal/tensor"
)

// The float32 stage adapters mirror the default adapters in stages.go
// with every per-event kernel running in float32. Event features and
// edge features (float64 at the detector boundary) convert to f32 once
// per event from the worker's arena; trained weights were converted
// once by syncInference. Scores and thresholds stay float64, so the
// decision logic and the track extractor are shared with the f64 path
// unchanged.
//
// Each adapter reads the current snapshot through the Reconstructor so
// that Fit and LoadCheckpoint — which rebuild the snapshot — take
// effect without rewiring the stages.

// features32 converts an event's hit features into the arena.
func features32(a *Arena, ev *Event) *tensor.Dense32 {
	return tensor.ConvertFrom[float32](a, ev.Features)
}

// mlpEmbedder32 adapts the stage-1 MLP at float32. The stage interface
// returns a float64 matrix, so the embedding widens (exactly) on the
// way out — only custom graph builders consume it; the default f32
// radius builder embeds internally and skips the widening.
type mlpEmbedder32 struct{ r *Reconstructor }

func (e mlpEmbedder32) Embed(ctx context.Context, a *Arena, ev *Event) (*Matrix, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	mark := a.Checkpoint()
	kc := kernels.From(ctx)
	emb := e.r.f32.embed.EmbedCtx(kc, a, features32(a, ev))
	out := tensor.ConvertFrom[float64](nil, emb)
	a.ResetTo(mark)
	return out, nil
}

func (e mlpEmbedder32) Params() []*Param { return e.r.p.Embedder.Params() }

// radiusBuilder32 is stage 2 at float32: embed the hits with the f32
// MLP and answer the fixed-radius queries on the f32 embedding
// directly (half the bytes per visited k-d node).
type radiusBuilder32 struct {
	r         *Reconstructor
	radius    float64
	maxDegree int
}

func (b radiusBuilder32) BuildEdges(ctx context.Context, a *Arena, ev *Event, _ func() (*Matrix, error)) (src, dst []int, err error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	mark := a.Checkpoint()
	defer a.ResetTo(mark)
	kc := kernels.From(ctx)
	emb := b.r.f32.embed.EmbedCtx(kc, a, features32(a, ev))
	src, dst = knnsearch.BuildRadiusGraphCtx(kc, emb, b.radius, b.maxDegree)
	return src, dst, nil
}

// mlpFilter32 adapts the stage-3 edge-filter MLP at float32.
type mlpFilter32 struct {
	r    *Reconstructor
	spec DetectorSpec
}

func (f mlpFilter32) FilterEdges(ctx context.Context, a *Arena, ev *Event, src, dst []int) (fsrc, fdst []int, err error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	if len(src) == 0 {
		return nil, nil, nil
	}
	mark := a.Checkpoint()
	edgeFeat := detector.EdgeFeaturesWith(a, f.spec, ev, src, dst)
	kc := kernels.From(ctx)
	keep := f.r.f32.filter.KeepCtx(kc, a, features32(a, ev), tensor.ConvertFrom[float32](a, edgeFeat), src, dst)
	a.ResetTo(mark)
	for k := range src {
		if keep[k] {
			fsrc = append(fsrc, src[k])
			fdst = append(fdst, dst[k])
		}
	}
	return fsrc, fdst, nil
}

func (f mlpFilter32) Params() []*Param { return f.r.p.Filter.Params() }

// gnnClassifier32 adapts the stage-4 Interaction GNN at float32.
type gnnClassifier32 struct{ r *Reconstructor }

func (c gnnClassifier32) ScoreEdges(ctx context.Context, a *Arena, eg *EventGraph) ([]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	mark := a.Checkpoint()
	defer a.ResetTo(mark)
	x := tensor.ConvertFrom[float32](a, eg.X)
	y := tensor.ConvertFrom[float32](a, eg.Y)
	return c.r.f32.gnn.EdgeScoresCtx(kernels.From(ctx), a, eg.G.Src, eg.G.Dst, x, y), nil
}

func (c gnnClassifier32) Params() []*Param { return c.r.p.GNN.Params() }
