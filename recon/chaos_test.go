package recon_test

import (
	"bytes"
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/workspace"
	"repro/recon"
)

// The chaos suite: deterministic fault injection (internal/faultinject)
// driven through recon.WithStageWrapper, asserting the PR 6 robustness
// invariants under -race — panics never escape the engine, faulted
// events fail individually while siblings complete, fault-free events
// stay bit-identical to an uninjected run, overload fast-fails, and
// drain is graceful.

// chaosBaseline reconstructs every event serially on an uninjected
// reconstructor — the bit-identical reference for fault-free events.
func chaosBaseline(t *testing.T, r *recon.Reconstructor, events []*recon.Event) []*recon.Result {
	t.Helper()
	out := make([]*recon.Result, len(events))
	for i, ev := range events {
		res, err := r.Reconstruct(context.Background(), ev)
		if err != nil {
			t.Fatalf("baseline event %d: %v", i, err)
		}
		out[i] = res
	}
	return out
}

// TestChaosBatchFaultIsolation: with errors and panics injected into
// random stages, the batch call survives, faulted events leave nil
// slots with typed errors, and every completed event is bit-identical
// to the fault-free baseline.
func TestChaosBatchFaultIsolation(t *testing.T) {
	ds := testDataset(t, 0.02, 16, 90)
	clean, err := recon.New(ds.Spec, recon.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	baseline := chaosBaseline(t, clean, ds.Events)

	inj, err := faultinject.New(faultinject.Config{Seed: 42, ErrorRate: 0.12, PanicRate: 0.08})
	if err != nil {
		t.Fatal(err)
	}
	chaotic, err := recon.New(ds.Spec, recon.WithSeed(5), recon.WithStageWrapper(inj))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := recon.NewEngine(chaotic, recon.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}

	results, err := eng.ReconstructBatch(context.Background(), ds.Events)
	if err != nil {
		// The batch-level error is the first per-event failure; it must be
		// one of ours, not an escaped panic or a mangled chain.
		if !errors.Is(err, faultinject.ErrInjected) && recon.AsStageError(err) == nil {
			t.Fatalf("batch error is neither injected nor a StageError: %v", err)
		}
	}

	var completed, faulted int
	for i, res := range results {
		if res == nil {
			faulted++
			continue
		}
		completed++
		if !reflect.DeepEqual(res, baseline[i]) {
			t.Fatalf("event %d completed under chaos but diverges from fault-free baseline", i)
		}
	}
	if completed == 0 || faulted == 0 {
		t.Fatalf("chaos run not exercising both paths: %d completed, %d faulted (tune seed)", completed, faulted)
	}
	st := inj.Stats()
	if int(st.Errors+st.Panics) != faulted {
		t.Fatalf("%d faults fired but %d events failed", st.Errors+st.Panics, faulted)
	}
	if got := eng.Stats().PanicsRecovered; got != st.Panics {
		t.Fatalf("engine recovered %d panics, injector fired %d", got, st.Panics)
	}
	if eng.Stats().InFlight != 0 {
		t.Fatalf("in-flight not released after batch: %+v", eng.Stats())
	}
}

// TestChaosDelayOnlyBitIdentical: latency spikes alone must never
// change results — the whole batch completes bit-identical to the
// fault-free baseline.
func TestChaosDelayOnlyBitIdentical(t *testing.T) {
	ds := testDataset(t, 0.02, 8, 91)
	clean, err := recon.New(ds.Spec, recon.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	baseline := chaosBaseline(t, clean, ds.Events)

	inj, err := faultinject.New(faultinject.Config{Seed: 7, DelayRate: 0.5, Delay: 2 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	chaotic, err := recon.New(ds.Spec, recon.WithSeed(5), recon.WithStageWrapper(inj))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := recon.NewEngine(chaotic, recon.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	results, err := eng.ReconstructBatch(context.Background(), ds.Events)
	if err != nil {
		t.Fatalf("delay-only chaos must not fail events: %v", err)
	}
	for i, res := range results {
		if !reflect.DeepEqual(res, baseline[i]) {
			t.Fatalf("event %d diverges under delay-only injection", i)
		}
	}
	if inj.Stats().Delays == 0 {
		t.Fatal("no delays fired at rate 0.5 over 8 events (tune seed)")
	}
}

// TestChaosStreamFaultIsolation: streamed outcomes stay in submission
// order under injected panics and errors; faulted outcomes carry typed
// errors tagged with their event index, clean outcomes match the
// baseline bit-for-bit.
func TestChaosStreamFaultIsolation(t *testing.T) {
	ds := testDataset(t, 0.02, 16, 92)
	clean, err := recon.New(ds.Spec, recon.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	baseline := chaosBaseline(t, clean, ds.Events)

	inj, err := faultinject.New(faultinject.Config{Seed: 13, ErrorRate: 0.12, PanicRate: 0.08})
	if err != nil {
		t.Fatal(err)
	}
	chaotic, err := recon.New(ds.Spec, recon.WithSeed(5), recon.WithStageWrapper(inj))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := recon.NewEngine(chaotic, recon.WithWorkers(3), recon.WithQueueDepth(2))
	if err != nil {
		t.Fatal(err)
	}

	in := make(chan *recon.Event)
	go func() {
		defer close(in)
		for _, ev := range ds.Events {
			in <- ev
		}
	}()
	stages := map[string]bool{"embed": true, "build": true, "filter": true, "classify": true, "extract": true}
	var got []recon.Outcome
	for o := range eng.ReconstructStream(context.Background(), in) {
		got = append(got, o)
	}
	if len(got) != len(ds.Events) {
		t.Fatalf("stream emitted %d outcomes for %d events", len(got), len(ds.Events))
	}
	var completed, faulted int
	for i, o := range got {
		if o.Index != i {
			t.Fatalf("outcome %d has index %d: chaos broke stream ordering", i, o.Index)
		}
		if o.Err != nil {
			faulted++
			se := recon.AsStageError(o.Err)
			if se == nil {
				if !errors.Is(o.Err, faultinject.ErrInjected) {
					t.Fatalf("outcome %d error is neither StageError nor injected: %v", i, o.Err)
				}
				continue
			}
			if !se.IsPanic() {
				t.Fatalf("outcome %d StageError without panic payload: %v", i, se)
			}
			if !stages[se.Stage] {
				t.Fatalf("outcome %d panic attributed to unknown stage %q", i, se.Stage)
			}
			if se.Event != i {
				t.Fatalf("outcome %d StageError tagged event %d", i, se.Event)
			}
			continue
		}
		completed++
		if !reflect.DeepEqual(o.Result, baseline[i]) {
			t.Fatalf("outcome %d completed under chaos but diverges from baseline", i)
		}
	}
	if completed == 0 || faulted == 0 {
		t.Fatalf("stream chaos not exercising both paths: %d completed, %d faulted (tune seed)", completed, faulted)
	}
	if got, want := eng.Stats().PanicsRecovered, inj.Stats().Panics; got != want {
		t.Fatalf("engine recovered %d panics, injector fired %d", got, want)
	}
}

// gateExtractor blocks inside stage 5 until released, signalling entry —
// the tool for holding the admission window open at a known point.
type gateExtractor struct {
	entered chan struct{} // buffered; one signal per call
	release chan struct{} // closed to let all calls finish
}

func newGate() gateExtractor {
	return gateExtractor{entered: make(chan struct{}, 64), release: make(chan struct{})}
}

func (g gateExtractor) ExtractTracks(ctx context.Context, eg *recon.EventGraph, keep []bool) ([][]int, error) {
	select {
	case g.entered <- struct{}{}:
	default:
	}
	select {
	case <-g.release:
		return nil, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// TestEngineOverloadFastFail: with the admission window held full, a
// second batch is rejected immediately with ErrOverloaded — no queueing,
// no waiting — and the rejection is counted.
func TestEngineOverloadFastFail(t *testing.T) {
	ds := testDataset(t, 0.02, 2, 93)
	gate := newGate()
	r, err := recon.New(ds.Spec, recon.WithTrackExtractor(gate), recon.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := recon.NewEngine(r, recon.WithWorkers(1), recon.WithQueueDepth(0))
	if err != nil {
		t.Fatal(err)
	}

	occupantErr := make(chan error, 1)
	go func() {
		_, err := eng.ReconstructBatch(context.Background(), ds.Events[:1])
		occupantErr <- err
	}()
	select {
	case <-gate.entered:
	case <-time.After(10 * time.Second):
		t.Fatal("occupant batch never reached the extractor")
	}

	start := time.Now()
	_, err = eng.ReconstructBatch(context.Background(), ds.Events[1:])
	if !errors.Is(err, recon.ErrOverloaded) {
		t.Fatalf("saturated engine returned %v, want ErrOverloaded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("overload rejection took %v, not a fast fail", elapsed)
	}
	if eng.Stats().Rejected != 1 {
		t.Fatalf("rejected counter = %d, want 1", eng.Stats().Rejected)
	}

	close(gate.release)
	if err := <-occupantErr; err != nil {
		t.Fatalf("occupant batch failed after release: %v", err)
	}
	if eng.Stats().InFlight != 0 {
		t.Fatalf("in-flight not released: %+v", eng.Stats())
	}
}

// TestEngineRequestTimeout: WithRequestTimeout bounds a wedged batch —
// the call returns DeadlineExceeded promptly instead of hanging.
func TestEngineRequestTimeout(t *testing.T) {
	ds := testDataset(t, 0.02, 1, 94)
	r, err := recon.New(ds.Spec,
		recon.WithTrackExtractor(slowExtractor{delay: 10 * time.Minute}),
		recon.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := recon.NewEngine(r, recon.WithWorkers(1), recon.WithRequestTimeout(50*time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err = eng.ReconstructBatch(context.Background(), ds.Events)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("deadline enforcement took %v", elapsed)
	}
}

// TestEngineStreamCancelCleanup is the PR 6 extension of the PR 3
// leak-check pattern: cancelling mid-stream emits an in-order prefix,
// leaks no goroutines, returns every pooled arena, and reconciles the
// admission window back to zero.
func TestEngineStreamCancelCleanup(t *testing.T) {
	ds := testDataset(t, 0.02, 32, 95)
	r, err := recon.New(ds.Spec,
		recon.WithTrackExtractor(slowExtractor{delay: 10 * time.Millisecond}),
		recon.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := recon.NewEngine(r, recon.WithWorkers(2), recon.WithQueueDepth(2))
	if err != nil {
		t.Fatal(err)
	}

	beforeGoroutines := runtime.NumGoroutine()
	beforeBytes := workspace.InUseBytes()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	in := make(chan *recon.Event, len(ds.Events))
	for _, ev := range ds.Events {
		in <- ev
	}
	out := eng.ReconstructStream(ctx, in)

	// Consume an in-order prefix, then cancel mid-stream.
	for i := 0; i < 3; i++ {
		o, ok := <-out
		if !ok {
			t.Fatalf("stream closed after %d outcomes", i)
		}
		if o.Index != i {
			t.Fatalf("prefix outcome %d has index %d: partial emission out of order", i, o.Index)
		}
		if o.Err != nil {
			t.Fatalf("prefix outcome %d: %v", i, o.Err)
		}
	}
	cancel()
	deadline := time.After(10 * time.Second)
	for open := true; open; {
		select {
		case _, ok := <-out:
			open = ok
		case <-deadline:
			t.Fatal("stream did not close after cancel")
		}
	}

	// Pool goroutines gone, arenas back in the pools, window reconciled.
	waitUntil := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= beforeGoroutines &&
			workspace.InUseBytes() == beforeBytes &&
			eng.Stats().InFlight == 0 {
			break
		}
		if time.Now().After(waitUntil) {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > beforeGoroutines {
		t.Fatalf("goroutines leaked: %d before stream, %d after cancel", beforeGoroutines, g)
	}
	if got := workspace.InUseBytes(); got != beforeBytes {
		t.Fatalf("pooled arenas not returned: %d bytes in use before, %d after", beforeBytes, got)
	}
	if inflight := eng.Stats().InFlight; inflight != 0 {
		t.Fatalf("admission window not reconciled: %d still in flight", inflight)
	}
}

// gatedServer builds a server whose single worker blocks in the
// extractor until released.
func gatedServer(t *testing.T, opts ...recon.Option) (*recon.Server, gateExtractor) {
	t.Helper()
	spec := testDataset(t, 0.02, 1, 1).Spec
	gate := newGate()
	r, err := recon.New(spec,
		recon.WithTruthLevelGraphs(1.0),
		recon.WithThreshold(0),
		recon.WithTrackExtractor(gate),
		recon.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := recon.NewEngine(r, recon.WithWorkers(1), recon.WithQueueDepth(0))
	if err != nil {
		t.Fatal(err)
	}
	return recon.NewServer(eng, opts...), gate
}

func syntheticReq() recon.ReconstructRequest {
	return recon.ReconstructRequest{Synthetic: &recon.SyntheticJSON{Count: 1, Seed: 7}}
}

// TestServerOverload429: with the engine saturated, a concurrent
// request fast-fails with 429 and a Retry-After hint; the admitted
// request still completes once unblocked.
func TestServerOverload429(t *testing.T) {
	srv, gate := gatedServer(t)

	first := make(chan *httptest.ResponseRecorder, 1)
	go func() { first <- postJSON(t, srv, "/v1/reconstruct", syntheticReq()) }()
	select {
	case <-gate.entered:
	case <-time.After(10 * time.Second):
		t.Fatal("first request never reached the extractor")
	}

	w := postJSON(t, srv, "/v1/reconstruct", syntheticReq())
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated server returned %d, want 429: %s", w.Code, w.Body.String())
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After header")
	}

	close(gate.release)
	if w := <-first; w.Code != http.StatusOK {
		t.Fatalf("admitted request finished %d after release: %s", w.Code, w.Body.String())
	}
}

// TestServerContentTypeAndBodyLimit: non-JSON Content-Type is a 415,
// an oversized body a 413 — both before any reconstruction work.
func TestServerContentTypeAndBodyLimit(t *testing.T) {
	srv, _ := testServer(t)
	req := httptest.NewRequest("POST", "/v1/reconstruct", strings.NewReader("hits=1"))
	req.Header.Set("Content-Type", "application/x-www-form-urlencoded")
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if w.Code != http.StatusUnsupportedMediaType {
		t.Fatalf("non-JSON Content-Type: status %d, want 415", w.Code)
	}

	spec := testDataset(t, 0.02, 1, 1).Spec
	r, err := recon.New(spec, recon.WithTruthLevelGraphs(1.0), recon.WithThreshold(0), recon.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := recon.NewEngine(r, recon.WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	small := recon.NewServer(eng, recon.WithMaxBodyBytes(64))
	big := `{"pad":"` + strings.Repeat("x", 200) + `"}`
	req = httptest.NewRequest("POST", "/v1/reconstruct", bytes.NewReader([]byte(big)))
	req.Header.Set("Content-Type", "application/json")
	w = httptest.NewRecorder()
	small.ServeHTTP(w, req)
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", w.Code)
	}
}

// TestServerGracefulDrain: Shutdown flips /healthz to draining, rejects
// new reconstruct work with 503, lets the in-flight request finish, and
// returns nil once the server is idle.
func TestServerGracefulDrain(t *testing.T) {
	srv, gate := gatedServer(t)

	first := make(chan *httptest.ResponseRecorder, 1)
	go func() { first <- postJSON(t, srv, "/v1/reconstruct", syntheticReq()) }()
	select {
	case <-gate.entered:
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight request never reached the extractor")
	}

	shutdownErr := make(chan error, 1)
	go func() { shutdownErr <- srv.Shutdown(context.Background()) }()
	waitUntil := time.Now().Add(5 * time.Second)
	for !srv.Draining() {
		if time.Now().After(waitUntil) {
			t.Fatal("server never flipped to draining")
		}
		time.Sleep(time.Millisecond)
	}

	w := httptest.NewRecorder()
	srv.ServeHTTP(w, httptest.NewRequest("GET", "/healthz", nil))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("healthz while draining: %d, want 503", w.Code)
	}
	if w := postJSON(t, srv, "/v1/reconstruct", syntheticReq()); w.Code != http.StatusServiceUnavailable {
		t.Fatalf("new work while draining: %d, want 503", w.Code)
	}

	// The in-flight request finishes intact, then Shutdown completes.
	close(gate.release)
	if w := <-first; w.Code != http.StatusOK {
		t.Fatalf("in-flight request truncated by drain: %d: %s", w.Code, w.Body.String())
	}
	select {
	case err := <-shutdownErr:
		if err != nil {
			t.Fatalf("drain failed: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Shutdown did not return after in-flight work finished")
	}
}

// TestServerDrainTimeout: a drain that cannot finish within its context
// reports ctx.Err() instead of blocking forever.
func TestServerDrainTimeout(t *testing.T) {
	srv, gate := gatedServer(t)
	defer close(gate.release)

	first := make(chan *httptest.ResponseRecorder, 1)
	go func() { first <- postJSON(t, srv, "/v1/reconstruct", syntheticReq()) }()
	select {
	case <-gate.entered:
	case <-time.After(10 * time.Second):
		t.Fatal("in-flight request never reached the extractor")
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	if err := srv.Shutdown(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired drain returned %v, want DeadlineExceeded", err)
	}
}

// TestChaosServerSurvives: a fault-injected server answers a burst of
// requests without ever crashing — every response is a well-formed HTTP
// status, per-event failures ride inside 200 bodies, and the panic
// counter reaches /statz.
func TestChaosServerSurvives(t *testing.T) {
	spec := testDataset(t, 0.02, 1, 1).Spec
	inj, err := faultinject.New(faultinject.Config{Seed: 3, ErrorRate: 0.2, PanicRate: 0.2})
	if err != nil {
		t.Fatal(err)
	}
	r, err := recon.New(spec,
		recon.WithTruthLevelGraphs(1.0),
		recon.WithThreshold(0),
		recon.WithSeed(2),
		recon.WithStageWrapper(inj))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := recon.NewEngine(r, recon.WithWorkers(2), recon.WithQueueDepth(2))
	if err != nil {
		t.Fatal(err)
	}
	srv := recon.NewServer(eng)

	var wg sync.WaitGroup
	codes := make([]int, 16)
	for i := range codes {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			w := postJSON(t, srv, "/v1/reconstruct", recon.ReconstructRequest{
				Synthetic: &recon.SyntheticJSON{Count: 4, Seed: uint64(i)},
			})
			codes[i] = w.Code
		}(i)
	}
	wg.Wait()
	for i, code := range codes {
		switch code {
		case http.StatusOK, http.StatusTooManyRequests:
		default:
			t.Fatalf("request %d: unexpected status %d under chaos", i, code)
		}
	}
	if inj.Stats().Panics > 0 && eng.Stats().PanicsRecovered == 0 {
		t.Fatal("panics fired but none recovered in engine stats")
	}
}
