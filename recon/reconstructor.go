package recon

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"

	"repro/internal/embed"
	"repro/internal/filter"
	"repro/internal/ignn"
	"repro/internal/kernels"
	"repro/internal/metrics"
	"repro/internal/nn"
	"repro/internal/pipeline"
	"repro/internal/workspace"
)

// Reconstructor composes the five reconstruction stages behind one
// context-aware, per-event entry point. Construct with New (fresh
// models) or FromPipeline (adapt an existing trained pipeline), swap
// stage variants with options, and wrap in an Engine for concurrency.
//
// A Reconstructor is safe for concurrent use once training is done:
// inference only reads model weights.
type Reconstructor struct {
	spec DetectorSpec
	cfg  pipeline.Config
	set  settings

	embedder   Embedder
	builder    GraphBuilder
	filter     EdgeFilter
	classifier EdgeClassifier
	extractor  TrackExtractor

	// run* are the stages actually invoked per event: the resolved
	// stages above, possibly wrapped by WithStageWrapper middleware
	// (fault injection, tracing). Structural logic — Fit, params,
	// checkpointing, default-stage detection — always sees the
	// unwrapped stages.
	runEmbedder   Embedder
	runBuilder    GraphBuilder
	runFilter     EdgeFilter
	runClassifier EdgeClassifier
	runExtractor  TrackExtractor

	// p holds the underlying staged models when the default adapters are
	// in play; Fit routes their training through the pipeline procedure.
	p *pipeline.Pipeline

	// f32 holds the float32 weight snapshots the reduced-precision stage
	// adapters read (nil unless WithPrecision(Float32)); syncInference
	// rebuilds it whenever the underlying f64 weights change.
	f32 *f32Models

	// i8 holds the quantized snapshots the Int8 stage adapters read;
	// i8scales the calibrated activation scales they were built from
	// (nil forces recalibration at the next sync), and calEvents the
	// representative events calibration runs over (the latest Fit's
	// training events; a synthetic batch when empty).
	i8        *i8Models
	i8scales  *i8Scales
	calEvents []*Event
}

// New builds a reconstructor with freshly initialized models for the
// given detector spec. Options override hyperparameters and swap stage
// implementations.
func New(spec DetectorSpec, opts ...Option) (*Reconstructor, error) {
	set, err := applyOptions(opts)
	if err != nil {
		return nil, err
	}
	cfg := pipeline.DefaultConfig(spec)
	applyConfig(&cfg, set)
	return assemble(spec, cfg, set, pipeline.New(cfg, set.seed))
}

// FromPipeline adapts an existing (typically trained) pipeline's models
// behind the stage interfaces. Structural options (WithGNN) are invalid
// here — the models already exist; runtime options (thresholds, radius,
// truth-level graphs, workers) apply normally.
func FromPipeline(p *pipeline.Pipeline, opts ...Option) (*Reconstructor, error) {
	set, err := applyOptions(opts)
	if err != nil {
		return nil, err
	}
	if set.gnnHidden != nil || set.gnnSteps != nil {
		return nil, errors.New("recon: WithGNN cannot reshape an existing pipeline's models")
	}
	cfg := p.Cfg
	applyConfig(&cfg, set)
	return assemble(cfg.Spec, cfg, set, p)
}

// applyConfig folds option overrides into the resolved hyperparameters.
func applyConfig(cfg *pipeline.Config, set settings) {
	if set.radius != nil {
		cfg.Radius = *set.radius
	}
	if set.maxDegree != nil {
		cfg.MaxDegree = *set.maxDegree
	}
	if set.gnnThreshold != nil {
		cfg.GNNThreshold = *set.gnnThreshold
	}
	if set.minTrackHits != nil {
		cfg.MinTrackHits = *set.minTrackHits
	}
	if set.filterThresh != nil {
		cfg.Filter.Threshold = *set.filterThresh
	}
	if set.gnnHidden != nil {
		cfg.GNN.Hidden = *set.gnnHidden
	}
	if set.gnnSteps != nil {
		cfg.GNN.Steps = *set.gnnSteps
	}
}

func assemble(spec DetectorSpec, cfg pipeline.Config, set settings, p *pipeline.Pipeline) (*Reconstructor, error) {
	r := &Reconstructor{spec: spec, cfg: cfg, set: set, p: p}
	f32 := set.precision == Float32
	i8 := set.precision == Int8

	r.embedder = set.embedder
	if r.embedder == nil {
		switch {
		case i8:
			r.embedder = mlpEmbedder8{r}
		case f32:
			r.embedder = mlpEmbedder32{r}
		default:
			r.embedder = mlpEmbedder{p.Embedder}
		}
	}
	r.builder = set.builder
	switch {
	case r.builder != nil:
	case set.truthLevel:
		r.builder = truthBuilder{fakeRatio: set.truthRatio, baseSeed: set.seed}
	case i8 && set.embedder == nil:
		// Like radiusBuilder32 one tier down: the fully-quantized radius
		// builder embeds internally with the built-in int8 snapshot.
		r.builder = radiusBuilder8{r: r, radius: cfg.Radius, maxDegree: cfg.MaxDegree}
	case f32 && set.embedder == nil:
		// The fully-f32 radius builder embeds internally with the built-in
		// f32 snapshot; a custom Embedder must keep the thunk-consuming
		// builder so its embedding is the one searched.
		r.builder = radiusBuilder32{r: r, radius: cfg.Radius, maxDegree: cfg.MaxDegree}
	default:
		r.builder = radiusBuilder{radius: cfg.Radius, maxDegree: cfg.MaxDegree}
	}
	r.filter = set.filter
	switch {
	case r.filter != nil:
	case set.skipFilter || set.truthLevel:
		// Truth-level graphs bypass the filter, matching the pipeline's
		// BuildTruthLevelGraph semantics.
		r.filter = passFilter{}
	case i8:
		r.filter = mlpFilter8{r: r, spec: spec}
	case f32:
		r.filter = mlpFilter32{r: r, spec: spec}
	default:
		r.filter = mlpFilter{f: p.Filter, spec: spec}
	}
	r.classifier = set.classifier
	if r.classifier == nil {
		switch {
		case i8:
			r.classifier = gnnClassifier8{r}
		case f32:
			r.classifier = gnnClassifier32{r}
		default:
			r.classifier = gnnClassifier{p.GNN}
		}
	}
	r.extractor = set.extractor
	if r.extractor == nil {
		r.extractor = ccExtractor{minTrackHits: cfg.MinTrackHits}
	}
	r.runEmbedder, r.runBuilder, r.runFilter = r.embedder, r.builder, r.filter
	r.runClassifier, r.runExtractor = r.classifier, r.extractor
	if w := set.wrapper; w != nil {
		r.runEmbedder = w.WrapEmbedder(r.embedder)
		r.runBuilder = w.WrapGraphBuilder(r.builder)
		r.runFilter = w.WrapEdgeFilter(r.filter)
		r.runClassifier = w.WrapEdgeClassifier(r.classifier)
		r.runExtractor = w.WrapTrackExtractor(r.extractor)
	}
	if err := r.syncInference(); err != nil {
		return nil, err
	}
	return r, nil
}

// syncInference refreshes the reduced-precision weight snapshots from
// the pipeline's float64 parameters. Called at construction and after
// every operation that rewrites the weights (Fit, LoadCheckpoint); a
// no-op at Float64, where inference reads the training parameters
// directly. At Int8 it additionally runs the activation-range
// calibration pass when no valid scales are cached (fresh construction,
// post-Fit invalidation, pre-v4 checkpoint load). Must not race
// concurrent inference — the Reconstructor is documented as safe for
// concurrent use only once training is done.
func (r *Reconstructor) syncInference() error {
	switch r.set.precision {
	case Float32:
		r.f32 = &f32Models{
			embed:  embed.NewInference[float32](r.p.Embedder),
			filter: filter.NewInference[float32](r.p.Filter),
			gnn:    ignn.NewInference[float32](r.p.GNN),
		}
	case Int8:
		if r.i8scales == nil {
			sc, err := r.calibrate(context.Background(), r.calibrationEvents())
			if err != nil {
				return fmt.Errorf("recon: int8 calibration: %w", err)
			}
			r.i8scales = sc
		}
		emb, err := embed.NewQuantized(r.p.Embedder, r.i8scales.embed)
		if err != nil {
			return fmt.Errorf("recon: quantize embedder: %w", err)
		}
		filt, err := filter.NewQuantized(r.p.Filter, r.i8scales.filter)
		if err != nil {
			return fmt.Errorf("recon: quantize filter: %w", err)
		}
		gnn, err := ignn.NewQuantized(r.p.GNN, r.i8scales.gnn)
		if err != nil {
			return fmt.Errorf("recon: quantize gnn: %w", err)
		}
		r.i8 = &i8Models{embed: emb, filter: filt, gnn: gnn}
	}
	return nil
}

// Precision returns the inference precision of the built-in stages.
func (r *Reconstructor) Precision() Precision { return r.set.precision }

// Spec returns the detector spec the reconstructor was built for.
func (r *Reconstructor) Spec() DetectorSpec { return r.spec }

// Threshold returns the stage-4 decision threshold.
func (r *Reconstructor) Threshold() float64 { return r.cfg.GNNThreshold }

// kernelCtx installs the serial intra-op worker budget on ctx for the
// default stage adapters (see stages.go). Engine workers install their
// own divided budget instead.
func (r *Reconstructor) kernelCtx(ctx context.Context) context.Context {
	kc := kernels.Budget(1, r.set.kernelWorkers)
	kc.Tiles = r.set.tiling
	return kernels.Into(ctx, kc)
}

// BuildGraph runs stages 1–3 on an event. The returned EventGraph is
// heap-owned and remains valid indefinitely.
func (r *Reconstructor) BuildGraph(ctx context.Context, ev *Event) (*EventGraph, error) {
	a := workspace.NewArena()
	defer a.Reset()
	return r.buildGraphWith(r.kernelCtx(ctx), a, ev)
}

func (r *Reconstructor) buildGraphWith(ctx context.Context, a *Arena, ev *Event) (*EventGraph, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	embedThunk := func() (m *Matrix, err error) {
		err = guardStage("embed", func() error {
			var e error
			m, e = r.runEmbedder.Embed(ctx, a, ev)
			return e
		})
		return m, err
	}
	var src, dst []int
	err := guardStage("build", func() error {
		var e error
		src, dst, e = r.runBuilder.BuildEdges(ctx, a, ev, embedThunk)
		return e
	})
	if err != nil {
		return nil, fmt.Errorf("recon: build edges: %w", err)
	}
	var fsrc, fdst []int
	err = guardStage("filter", func() error {
		var e error
		fsrc, fdst, e = r.runFilter.FilterEdges(ctx, a, ev, src, dst)
		return e
	})
	if err != nil {
		return nil, fmt.Errorf("recon: filter edges: %w", err)
	}
	return pipeline.AssembleGraph(r.spec, ev, fsrc, fdst), nil
}

// guardStage invokes one stage call, converting a panic in the stage
// implementation into a *StageError so a poisoned event degrades one
// result instead of killing the process. Ordinary stage errors pass
// through untouched; a panic in the guarded embed thunk surfaces as a
// *StageError returned through the builder, so attribution follows the
// stage that actually panicked.
func guardStage(stage string, fn func() error) (err error) {
	defer func() {
		if p := recover(); p != nil {
			err = &StageError{Stage: stage, Event: -1, Panic: p, Stack: debug.Stack()}
		}
	}()
	return fn()
}

// Reconstruct runs all five stages on one event and scores the output
// against truth. It is the serial entry point; use an Engine for
// batches and streams.
func (r *Reconstructor) Reconstruct(ctx context.Context, ev *Event) (*Result, error) {
	a := workspace.NewArena()
	defer a.Reset()
	return r.reconstructWith(r.kernelCtx(ctx), a, ev)
}

// ReconstructOn runs stages 4–5 on a pre-built event graph.
func (r *Reconstructor) ReconstructOn(ctx context.Context, eg *EventGraph) (*Result, error) {
	a := workspace.NewArena()
	defer a.Reset()
	return r.reconstructOnWith(r.kernelCtx(ctx), a, eg)
}

// reconstructWith is the engine's per-event unit of work: everything
// transient comes from the caller's arena, released before returning,
// so a worker's pinned arena stays warm across events.
func (r *Reconstructor) reconstructWith(ctx context.Context, a *Arena, ev *Event) (*Result, error) {
	mark := a.Checkpoint()
	defer a.ResetTo(mark)
	eg, err := r.buildGraphWith(ctx, a, ev)
	if err != nil {
		return nil, err
	}
	return r.reconstructOnWith(ctx, a, eg)
}

func (r *Reconstructor) reconstructOnWith(ctx context.Context, a *Arena, eg *EventGraph) (*Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	res := &Result{}
	keep := make([]bool, eg.NumEdges())
	if eg.NumEdges() > 0 {
		var scores []float64
		err := guardStage("classify", func() error {
			var e error
			scores, e = r.runClassifier.ScoreEdges(ctx, a, eg)
			return e
		})
		if err != nil {
			return nil, fmt.Errorf("recon: score edges: %w", err)
		}
		if len(scores) != eg.NumEdges() {
			return nil, fmt.Errorf("recon: classifier returned %d scores for %d edges", len(scores), eg.NumEdges())
		}
		for k, s := range scores {
			keep[k] = s >= r.cfg.GNNThreshold
			res.EdgeCounts.Add(keep[k], eg.Label[k] > 0.5)
		}
	}
	var tracks [][]int
	err := guardStage("extract", func() error {
		var e error
		tracks, e = r.runExtractor.ExtractTracks(ctx, eg, keep)
		return e
	})
	if err != nil {
		return nil, fmt.Errorf("recon: extract tracks: %w", err)
	}
	res.Tracks = tracks
	hitParticle := make([]int, eg.Event.NumHits())
	for i, h := range eg.Event.Hits {
		hitParticle[i] = h.Particle
	}
	res.Match = metrics.MatchTracks(res.Tracks, hitParticle,
		eg.Event.TrackHits(r.cfg.MinTrackHits), r.cfg.MinTrackHits)
	return res, nil
}

// Fit trains the trainable stages on the given events: the default
// embedding and filter stages through the staged Exa.TrkX procedure,
// the default GNN stage on graphs built by the configured GraphBuilder,
// and any custom stage implementing Fitter. Custom stages without a
// Fitter are assumed training-free.
func (r *Reconstructor) Fit(ctx context.Context, events []*Event) error {
	if len(events) == 0 {
		return errors.New("recon: Fit needs at least one training event")
	}
	// The training events are the representative sample int8 calibration
	// runs over from here on; any previously calibrated scales are stale
	// the moment the weights move.
	r.calEvents = events
	embedDefault := isDefaultEmbedder(r.embedder)
	filterDefault := isDefaultFilter(r.filter)
	// The truth-level builder never consumes the embedding, so training
	// the embedder under it would be pure waste; a custom builder might
	// call the embed thunk, so it keeps embedder training.
	_, truthLevel := r.builder.(truthBuilder)
	switch {
	case embedDefault && filterDefault:
		// The staged Exa.TrkX procedure: embedder first, then the filter
		// on radius graphs built in the trained embedding space.
		if err := r.p.TrainStages13Context(ctx, events, r.set.seed+1); err != nil {
			return err
		}
	case embedDefault && !truthLevel:
		// Filter is skipped or custom (custom filters train through the
		// Fitter loop below); the embedder still trains on its own.
		if err := r.p.TrainEmbedderContext(ctx, events, r.set.seed+1); err != nil {
			return err
		}
	case filterDefault:
		return errors.New("recon: the default edge filter trains on the default embedder's radius graphs; with a custom Embedder, supply an EdgeFilter that implements Fitter")
	}
	// The reduced-precision adapters read weight snapshots; refresh them
	// (recalibrating at Int8) so the graphs built for GNN training below
	// see the freshly trained stages 1–3.
	r.i8scales = nil
	if err := r.syncInference(); err != nil {
		return err
	}
	for _, stage := range []any{r.embedder, r.builder, r.filter, r.classifier, r.extractor} {
		if f, ok := stage.(Fitter); ok {
			if err := f.Fit(ctx, events); err != nil {
				return err
			}
		}
	}
	if isDefaultClassifier(r.classifier) {
		graphs := make([]*EventGraph, 0, len(events))
		for _, ev := range events {
			eg, err := r.BuildGraph(ctx, ev)
			if err != nil {
				return err
			}
			graphs = append(graphs, eg)
		}
		if _, err := r.p.TrainGNNContext(ctx, graphs, r.set.gnnEpochs, r.set.gnnLR, r.set.gnnPosWeight); err != nil {
			return err
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	r.i8scales = nil
	return r.syncInference()
}

// isDefaultEmbedder (and friends) report whether a stage is one of the
// built-in adapters — at either precision — whose underlying models the
// pipeline's staged training procedure trains.
func isDefaultEmbedder(e Embedder) bool {
	switch e.(type) {
	case mlpEmbedder, mlpEmbedder32, mlpEmbedder8:
		return true
	}
	return false
}

func isDefaultFilter(f EdgeFilter) bool {
	switch f.(type) {
	case mlpFilter, mlpFilter32, mlpFilter8:
		return true
	}
	return false
}

func isDefaultClassifier(c EdgeClassifier) bool {
	switch c.(type) {
	case gnnClassifier, gnnClassifier32, gnnClassifier8:
		return true
	}
	return false
}

// params walks the five stages in order and collects the trainable
// parameters of those that have any. For the default stage layout this
// matches the pipeline checkpoint layout exactly, so recon checkpoints
// and pipeline.SaveModels checkpoints are interchangeable.
func (r *Reconstructor) params() []*Param {
	var ps []*Param
	for _, stage := range []any{r.embedder, r.builder, r.filter, r.classifier, r.extractor} {
		if p, ok := stage.(Parameterized); ok {
			ps = append(ps, p.Params()...)
		}
	}
	return ps
}

// SaveCheckpoint writes the trainable parameters of every stage to a
// versioned, shape-checked checkpoint file (see internal/nn).
func (r *Reconstructor) SaveCheckpoint(path string) error {
	return nn.SaveParamsFile(path, r.params())
}

// LoadCheckpoint restores a checkpoint written by SaveCheckpoint,
// SaveCheckpointInt8, or the legacy pipeline.SaveModels into a
// reconstructor with the same stage layout and hyperparameters.
// Mismatched shapes fail loudly before any parameter is modified. All
// checkpoint versions load — v4 (int8 weights + activation scales,
// which at WithPrecision(Int8) are adopted so no recalibration runs),
// v3 (dtype-tagged, f64 or f32 payloads), v2, and legacy headerless
// files — and the reduced-precision inference snapshots are refreshed
// from the loaded weights.
func (r *Reconstructor) LoadCheckpoint(path string) error {
	act, err := nn.LoadParamsFileExt(path, r.params())
	if err != nil {
		return err
	}
	if len(act) > 0 {
		sc, err := i8ScalesFromAct(act, r.cfg.GNN.Steps)
		if err != nil {
			return err
		}
		r.i8scales = sc
	} else {
		// A pre-v4 file carries no calibration; any cached scales belong
		// to the previous weights.
		r.i8scales = nil
	}
	return r.syncInference()
}
