package recon_test

import (
	"context"
	"testing"

	"repro/internal/detector"
	"repro/recon"
)

// distGraphs builds truth-level event graphs through the recon surface.
func distGraphs(t *testing.T, events int) (recon.DetectorSpec, []*recon.EventGraph) {
	t.Helper()
	spec := detector.Ex3Like(0.02)
	spec.NumEvents = events
	ds := detector.Generate(spec, 33)
	r, err := recon.New(spec, recon.WithTruthLevelGraphs(1.5), recon.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	var egs []*recon.EventGraph
	for _, ev := range ds.Events {
		eg, err := r.BuildGraph(context.Background(), ev)
		if err != nil {
			t.Fatal(err)
		}
		egs = append(egs, eg)
	}
	return spec, egs
}

func distOpts(extra ...recon.Option) []recon.Option {
	base := []recon.Option{
		recon.WithGNN(8, 2),
		recon.WithGNNTraining(2, 3e-3, 1),
		recon.WithBatchSize(48),
		recon.WithSeed(7),
	}
	return append(base, extra...)
}

// TestTrainDistributedRankParity is the public-API acceptance criterion:
// P=4 matches the P=1 loss trajectory bit for bit on a fixed seed.
func TestTrainDistributedRankParity(t *testing.T) {
	_, egs := distGraphs(t, 2)
	ctx := context.Background()
	want, err := recon.TrainDistributed(ctx, egs, distOpts(recon.WithRanks(1))...)
	if err != nil {
		t.Fatal(err)
	}
	if len(want.Losses) == 0 {
		t.Fatal("no steps recorded")
	}
	for _, p := range []int{2, 4} {
		got, err := recon.TrainDistributed(ctx, egs, distOpts(recon.WithRanks(p))...)
		if err != nil {
			t.Fatal(err)
		}
		if len(got.Losses) != len(want.Losses) {
			t.Fatalf("P=%d: %d steps vs %d", p, len(got.Losses), len(want.Losses))
		}
		for i := range want.Losses {
			if got.Losses[i] != want.Losses[i] {
				t.Fatalf("P=%d step %d: %.17g != %.17g", p, i, got.Losses[i], want.Losses[i])
			}
		}
	}
}

// TestTrainDistributedClassifierPlugsIn: the trained classifier slots
// into a Reconstructor as stage 4 and reconstructs events end to end.
func TestTrainDistributedClassifierPlugsIn(t *testing.T) {
	spec, egs := distGraphs(t, 2)
	ctx := context.Background()
	res, err := recon.TrainDistributed(ctx, egs, distOpts(recon.WithRanks(2), recon.WithSyncStrategy(recon.BucketedSync))...)
	if err != nil {
		t.Fatal(err)
	}
	prec, rec, err := res.Evaluate(ctx, egs, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if prec == 0 && rec == 0 {
		t.Fatal("trained classifier scored nothing")
	}
	r, err := recon.New(spec,
		recon.WithTruthLevelGraphs(1.5), recon.WithSeed(5),
		recon.WithEdgeClassifier(res.Classifier), recon.WithThreshold(0.1))
	if err != nil {
		t.Fatal(err)
	}
	ds := detector.Generate(func() recon.DetectorSpec { s := spec; s.NumEvents = 1; return s }(), 91)
	out, err := r.Reconstruct(ctx, ds.Events[0])
	if err != nil {
		t.Fatal(err)
	}
	if out == nil {
		t.Fatal("nil result")
	}
}

func TestTrainDistributedOptionErrors(t *testing.T) {
	_, egs := distGraphs(t, 1)
	ctx := context.Background()
	for _, opts := range [][]recon.Option{
		{recon.WithRanks(0)},
		{recon.WithBulkBatches(0)},
		{recon.WithBucketBytes(-1)},
		{recon.WithSyncStrategy(recon.SyncStrategy(99))},
		{recon.WithBatchSize(0)},
		{recon.WithGradBlocks(0)},
	} {
		if _, err := recon.TrainDistributed(ctx, egs, opts...); err == nil {
			t.Fatalf("invalid option %T accepted", opts[0])
		}
	}
	if _, err := recon.TrainDistributed(ctx, nil); err == nil {
		t.Fatal("empty graph list accepted")
	}
}

func TestTrainDistributedCancelled(t *testing.T) {
	_, egs := distGraphs(t, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := recon.TrainDistributed(ctx, egs, distOpts(recon.WithRanks(2))...)
	if err != context.Canceled {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if res == nil {
		t.Fatal("partial result should still be returned")
	}
	if len(res.Losses) != 0 {
		t.Fatalf("cancelled-before-start run recorded %d steps", len(res.Losses))
	}
}
