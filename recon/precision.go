package recon

import (
	"repro/internal/embed"
	"repro/internal/filter"
	"repro/internal/ignn"
)

// Precision selects the element type the built-in inference stages run
// in. Training always runs in float64; WithPrecision(Float32) converts
// the trained stage weights to float32 once (at construction, and again
// after Fit or LoadCheckpoint refresh them) and then executes all five
// stages' per-event kernels in float32 — roughly half the memory
// traffic of the bandwidth-bound GEMM/SpMM/gather kernels that dominate
// serving. Scores, thresholds, and track metrics stay float64; the
// precision boundary sits at the per-event feature conversion on the
// way in and the per-edge logit on the way out.
type Precision int

const (
	// Float64 is full precision — the default, bitwise identical to the
	// training-path forward.
	Float64 Precision = iota
	// Float32 is the reduced-precision serving path.
	Float32
	// Int8 is the quantized serving path: weights quantize per output
	// column, activations at static per-tensor scales captured by a
	// calibration pass (automatic at construction/Fit, or restored from
	// a v4 checkpoint), and the hot GEMM/SpMM kernels move a quarter of
	// Float32's bytes.
	Int8
)

// String returns the conventional dtype tag ("f64"/"f32"/"i8").
func (p Precision) String() string {
	switch p {
	case Float32:
		return "f32"
	case Int8:
		return "i8"
	}
	return "f64"
}

// ParsePrecision parses "f32"/"float32", "f64"/"float64", and
// "i8"/"int8" (the cmd/serve -precision flag values).
func ParsePrecision(s string) (Precision, bool) {
	switch s {
	case "f32", "float32":
		return Float32, true
	case "i8", "int8":
		return Int8, true
	case "f64", "float64", "":
		return Float64, true
	}
	return Float64, false
}

// WithPrecision selects the inference precision of the built-in stages
// (default Float64). Float32 and Int8 apply to the default embedder,
// filter, and GNN classifier adapters and the radius graph builder;
// custom stage implementations run whatever precision they implement.
// Track efficiency/purity at reduced precision matches Float64 within
// the accuracy budget documented in PERF.md (and enforced by the recon
// precision tests); per-edge scores differ at rounding/quantization
// magnitude, so edges scored within that distance of the decision
// threshold may flip. Int8 additionally needs calibrated activation
// scales: Fit calibrates on the training events, LoadCheckpoint adopts
// a v4 checkpoint's tables, and an untrained reconstructor calibrates
// on a small deterministic synthetic batch so construction always
// succeeds.
func WithPrecision(p Precision) Option {
	return func(s *settings) {
		if p != Float64 && p != Float32 && p != Int8 {
			s.fail("WithPrecision: unknown precision %d", int(p))
			return
		}
		s.precision = p
	}
}

// f32Models holds the float32 snapshots of the default stages' trained
// weights. The whole struct is rebuilt (never mutated in place) by
// Reconstructor.syncInference, so concurrent readers that loaded the
// pointer see a consistent snapshot; per the Reconstructor's
// concurrency contract, Fit/LoadCheckpoint must not race inference.
type f32Models struct {
	embed  *embed.Inference[float32]
	filter *filter.Inference[float32]
	gnn    *ignn.Inference[float32]
}

// i8Models holds the int8 quantized snapshots of the default stages'
// trained weights plus the calibrated activation scales they were built
// from. Rebuilt whole by Reconstructor.syncInference under the same
// concurrency contract as f32Models.
type i8Models struct {
	embed  *embed.Quantized
	filter *filter.Quantized
	gnn    *ignn.Quantized
}
