package recon

import (
	"repro/internal/embed"
	"repro/internal/filter"
	"repro/internal/ignn"
)

// Precision selects the element type the built-in inference stages run
// in. Training always runs in float64; WithPrecision(Float32) converts
// the trained stage weights to float32 once (at construction, and again
// after Fit or LoadCheckpoint refresh them) and then executes all five
// stages' per-event kernels in float32 — roughly half the memory
// traffic of the bandwidth-bound GEMM/SpMM/gather kernels that dominate
// serving. Scores, thresholds, and track metrics stay float64; the
// precision boundary sits at the per-event feature conversion on the
// way in and the per-edge logit on the way out.
type Precision int

const (
	// Float64 is full precision — the default, bitwise identical to the
	// training-path forward.
	Float64 Precision = iota
	// Float32 is the reduced-precision serving path.
	Float32
)

// String returns the conventional dtype tag ("f64"/"f32").
func (p Precision) String() string {
	if p == Float32 {
		return "f32"
	}
	return "f64"
}

// ParsePrecision parses "f32"/"float32" and "f64"/"float64" (the
// cmd/serve -precision flag values).
func ParsePrecision(s string) (Precision, bool) {
	switch s {
	case "f32", "float32":
		return Float32, true
	case "f64", "float64", "":
		return Float64, true
	}
	return Float64, false
}

// WithPrecision selects the inference precision of the built-in stages
// (default Float64). Float32 applies to the default embedder, filter,
// and GNN classifier adapters and the radius graph builder; custom
// stage implementations run whatever precision they implement. Track
// efficiency/purity at Float32 matches Float64 within the tolerance
// documented in PERF.md; per-edge scores differ at float32 rounding
// magnitude, so edges scored within that distance of the decision
// threshold may flip.
func WithPrecision(p Precision) Option {
	return func(s *settings) {
		if p != Float64 && p != Float32 {
			s.fail("WithPrecision: unknown precision %d", int(p))
			return
		}
		s.precision = p
	}
}

// f32Models holds the float32 snapshots of the default stages' trained
// weights. The whole struct is rebuilt (never mutated in place) by
// Reconstructor.syncInference, so concurrent readers that loaded the
// pointer see a consistent snapshot; per the Reconstructor's
// concurrency contract, Fit/LoadCheckpoint must not race inference.
type f32Models struct {
	embed  *embed.Inference[float32]
	filter *filter.Inference[float32]
	gnn    *ignn.Inference[float32]
}
