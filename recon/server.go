package recon

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"mime"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/detector"
	"repro/internal/tensor"
	"repro/recon/wire"
)

// The wire DTOs live in recon/wire (shared with cmd/loadgen and any
// external client); these aliases keep the historical recon names
// working unchanged.
type (
	// HitJSON is one detector hit on the wire.
	HitJSON = wire.Hit
	// EventJSON is one collision event on the wire.
	EventJSON = wire.Event
	// SyntheticJSON asks the server to generate events server-side.
	SyntheticJSON = wire.Synthetic
	// ReconstructRequest is the POST /v1/reconstruct body.
	ReconstructRequest = wire.Request
	// TrackResultJSON is one event's reconstruction on the wire.
	TrackResultJSON = wire.TrackResult
	// ReconstructResponse is the POST /v1/reconstruct reply.
	ReconstructResponse = wire.Response
)

// StatsJSON is the GET /statz reply: throughput counters, latency
// quantiles over the most recent requests, and the engine's admission
// and fault counters.
type StatsJSON struct {
	UptimeSeconds   float64 `json:"uptime_s"`
	Requests        int64   `json:"requests"`
	Events          int64   `json:"events"`
	Errors          int64   `json:"errors"`
	EventsPerSecond float64 `json:"events_per_s"`
	LatencyP50Ms    float64 `json:"latency_p50_ms"`
	LatencyP90Ms    float64 `json:"latency_p90_ms"`
	LatencyP99Ms    float64 `json:"latency_p99_ms"`
	Workers         int     `json:"workers"`
	Precision       string  `json:"precision"`

	// Robustness counters (PR 6).
	QueueCapacity   int64 `json:"queue_capacity"`    // admission window: workers + queue depth
	QueueInFlight   int64 `json:"queue_in_flight"`   // events admitted and not yet finished
	Rejected        int64 `json:"rejected_requests"` // 429s: admission-queue fast fails
	PanicsRecovered int64 `json:"panics_recovered"`  // stage panics isolated into per-event errors
	Draining        bool  `json:"draining"`          // graceful shutdown in progress

	// Micro-batching counters (PR 8); both zero when coalescing is off.
	CoalescedBatches int64 `json:"coalesced_batches"` // micro-batches dispatched
	CoalescedEvents  int64 `json:"coalesced_events"`  // events executed via merged batches
}

// serverStats tracks throughput counters and a ring of recent request
// latencies for quantile estimation.
type serverStats struct {
	mu        sync.Mutex
	start     time.Time
	requests  int64
	events    int64
	errors    int64
	latencies []time.Duration // ring buffer
	next      int
	filled    bool
}

const latencyWindow = 1024

func newServerStats() *serverStats {
	return &serverStats{start: time.Now(), latencies: make([]time.Duration, latencyWindow)}
}

func (s *serverStats) record(d time.Duration, events int, failed bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.requests++
	s.events += int64(events)
	if failed {
		s.errors++
	}
	s.latencies[s.next] = d
	s.next++
	if s.next == len(s.latencies) {
		s.next = 0
		s.filled = true
	}
}

func (s *serverStats) snapshot(workers int, precision string) StatsJSON {
	s.mu.Lock()
	n := s.next
	if s.filled {
		n = len(s.latencies)
	}
	window := append([]time.Duration(nil), s.latencies[:n]...)
	out := StatsJSON{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Requests:      s.requests,
		Events:        s.events,
		Errors:        s.errors,
		Workers:       workers,
		Precision:     precision,
	}
	s.mu.Unlock()

	if out.UptimeSeconds > 0 {
		out.EventsPerSecond = float64(out.Events) / out.UptimeSeconds
	}
	if len(window) > 0 {
		sort.Slice(window, func(i, j int) bool { return window[i] < window[j] })
		q := func(p float64) float64 {
			i := int(p * float64(len(window)-1))
			return float64(window[i]) / float64(time.Millisecond)
		}
		out.LatencyP50Ms = q(0.50)
		out.LatencyP90Ms = q(0.90)
		out.LatencyP99Ms = q(0.99)
	}
	return out
}

// Server is the HTTP JSON front-end over an Engine: POST /v1/reconstruct
// runs concurrent reconstruction, GET /healthz is a liveness/readiness
// probe (503 while draining), and GET /statz reports p50/p90/p99
// latency, throughput, and the engine's admission/fault counters.
//
// Robustness contract (see API.md "Resilience"):
//   - overload fast-fails with 429 + Retry-After instead of queueing;
//   - request bodies are size-capped (413) and must be JSON (415);
//   - a per-request deadline (WithRequestTimeout) turns a wedged batch
//     into a 503 instead of an unbounded wait;
//   - Shutdown drains gracefully: /healthz flips to draining, new
//     reconstruct work is rejected with 503, in-flight requests finish.
type Server struct {
	engine       *Engine
	stats        *serverStats
	mux          *http.ServeMux
	maxBody      int64
	drainTimeout time.Duration

	draining atomic.Bool
	inflight sync.WaitGroup
}

// NewServer wraps an engine in the HTTP front-end. Relevant options:
// WithMaxBodyBytes (default 8 MiB) and WithDrainTimeout (default 10s,
// used by Serve when its context is cancelled).
func NewServer(engine *Engine, opts ...Option) *Server {
	set, err := applyOptions(opts)
	if err != nil {
		// Keep the error-free constructor signature: an invalid knob falls
		// back to the safe defaults rather than serving with a bad limit.
		set = defaultSettings()
	}
	s := &Server{
		engine:       engine,
		stats:        newServerStats(),
		mux:          http.NewServeMux(),
		maxBody:      set.maxBodyBytes,
		drainTimeout: set.drainTimeout,
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /statz", s.handleStatz)
	s.mux.HandleFunc("POST /v1/reconstruct", s.handleReconstruct)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Draining reports whether graceful shutdown has begun.
func (s *Server) Draining() bool { return s.draining.Load() }

// Shutdown begins a graceful drain: /healthz flips to 503 "draining" so
// load balancers stop routing here, new reconstruct requests are
// rejected with 503, and the call blocks until every in-flight request
// has finished or ctx expires (ctx.Err() is returned in that case; the
// stragglers are then cut off by the HTTP server teardown). Safe to
// call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	done := make(chan struct{})
	go func() { s.inflight.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleStatz(w http.ResponseWriter, _ *http.Request) {
	snap := s.stats.snapshot(s.engine.Workers(), s.engine.Reconstructor().Precision().String())
	es := s.engine.Stats()
	snap.QueueCapacity = es.Capacity
	snap.QueueInFlight = es.InFlight
	snap.Rejected = es.Rejected
	snap.PanicsRecovered = es.PanicsRecovered
	snap.Draining = s.draining.Load()
	snap.CoalescedBatches = es.CoalescedBatches
	snap.CoalescedEvents = es.CoalescedEvents
	writeJSON(w, http.StatusOK, snap)
}

// requestFormat classifies the request body encoding: JSON (an explicit
// application/json, any +json suffix, or no Content-Type at all) or
// binary (wire.ContentTypeBinary). Anything else is a client bug worth
// a 415 rather than a decode error.
func requestFormat(r *http.Request) (binary, ok bool) {
	ct := r.Header.Get("Content-Type")
	if ct == "" {
		return false, true
	}
	mt, _, err := mime.ParseMediaType(ct)
	if err != nil {
		return false, false
	}
	switch {
	case mt == wire.ContentTypeBinary:
		return true, true
	case mt == wire.ContentTypeJSON || strings.HasSuffix(mt, "+json"):
		return false, true
	}
	return false, false
}

// wantBinaryResponse applies the response-side negotiation rule: the
// client gets the binary encoding when its Accept header names
// application/x-recon-bin, JSON when it names application/json, and
// otherwise (absent Accept, */*) the response mirrors the request
// encoding. Error responses are always JSON regardless.
func wantBinaryResponse(r *http.Request, reqBinary bool) bool {
	accept := r.Header.Get("Accept")
	if accept == "" {
		return reqBinary
	}
	for _, part := range strings.Split(accept, ",") {
		mt, _, err := mime.ParseMediaType(strings.TrimSpace(part))
		if err != nil {
			continue
		}
		switch mt {
		case wire.ContentTypeBinary:
			return true
		case wire.ContentTypeJSON:
			return false
		}
	}
	return reqBinary
}

// decodeReconstructRequest reads and decodes a /v1/reconstruct body in
// either encoding under the size cap. On failure the returned status
// (415/413/400) is what the caller must answer with.
func decodeReconstructRequest(w http.ResponseWriter, r *http.Request, maxBody int64) (req *ReconstructRequest, reqBinary bool, status int, err error) {
	reqBinary, ok := requestFormat(r)
	if !ok {
		return nil, false, http.StatusUnsupportedMediaType,
			fmt.Errorf("Content-Type must be %s or %s", wire.ContentTypeJSON, wire.ContentTypeBinary)
	}
	r.Body = http.MaxBytesReader(w, r.Body, maxBody)
	body, err := io.ReadAll(r.Body)
	if err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			return nil, reqBinary, http.StatusRequestEntityTooLarge,
				fmt.Errorf("request body exceeds %d bytes", tooLarge.Limit)
		}
		return nil, reqBinary, http.StatusBadRequest, fmt.Errorf("read request body: %w", err)
	}
	if reqBinary {
		req, err = wire.DecodeRequest(body)
	} else {
		req = &ReconstructRequest{}
		err = json.Unmarshal(body, req)
	}
	if err != nil {
		return nil, reqBinary, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err)
	}
	return req, reqBinary, 0, nil
}

// writeReconstructResponse writes the 200 reply in the negotiated
// encoding.
func writeReconstructResponse(w http.ResponseWriter, binary bool, resp *ReconstructResponse) {
	if !binary {
		writeJSON(w, http.StatusOK, resp)
		return
	}
	buf, err := wire.AppendResponse(nil, resp)
	if err != nil {
		writeJSON(w, http.StatusInternalServerError, map[string]string{"error": "encode response: " + err.Error()})
		return
	}
	w.Header().Set("Content-Type", wire.ContentTypeBinary)
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(buf)
}

func (s *Server) handleReconstruct(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	// Drain gate: Add before the draining check so Shutdown's Wait can
	// never miss a request that saw draining=false.
	s.inflight.Add(1)
	defer s.inflight.Done()
	if s.draining.Load() {
		s.stats.record(time.Since(start), 0, true)
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": ErrDraining.Error()})
		return
	}
	req, reqBinary, status, derr := decodeReconstructRequest(w, r, s.maxBody)
	if derr != nil {
		s.stats.record(time.Since(start), 0, true)
		writeJSON(w, status, map[string]string{"error": derr.Error()})
		return
	}
	respBinary := wantBinaryResponse(r, reqBinary)
	spec := s.engine.Reconstructor().Spec()

	events := make([]*Event, 0, len(req.Events))
	for i := range req.Events {
		ev, err := eventFromJSON(spec, &req.Events[i])
		if err != nil {
			s.stats.record(time.Since(start), 0, true)
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": fmt.Sprintf("event %d: %v", i, err)})
			return
		}
		events = append(events, ev)
	}
	if req.Synthetic != nil {
		count := req.Synthetic.Count
		if count <= 0 {
			count = 1
		}
		if count > 64 {
			s.stats.record(time.Since(start), 0, true)
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "synthetic.count must be ≤ 64"})
			return
		}
		gspec := spec
		gspec.NumEvents = count
		ds := detector.Generate(gspec, req.Synthetic.Seed)
		events = append(events, ds.Events...)
	}
	if len(events) == 0 {
		s.stats.record(time.Since(start), 0, true)
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "no events: supply events or synthetic"})
		return
	}

	results, err := s.engine.ReconstructCoalesced(r.Context(), events)
	if errors.Is(err, ErrOverloaded) {
		// Admission queue full: fast-fail so the client backs off instead
		// of stacking latency on an already saturated engine.
		s.stats.record(time.Since(start), 0, true)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests, map[string]string{"error": err.Error()})
		return
	}
	if err != nil && r.Context().Err() != nil {
		// Client went away or timed out; nothing useful to write.
		s.stats.record(time.Since(start), len(events), true)
		return
	}
	if errors.Is(err, context.DeadlineExceeded) {
		// The engine's per-request deadline (WithRequestTimeout) fired
		// while the client is still connected.
		s.stats.record(time.Since(start), len(events), true)
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": "request deadline exceeded"})
		return
	}

	resp := ReconstructResponse{Results: make([]TrackResultJSON, len(events))}
	failed := err != nil
	failDetail := "reconstruction failed"
	if err != nil {
		// The engine reports the batch's first event error; surface it so
		// operators see why slots failed instead of a generic marker.
		failDetail = err.Error()
	}
	for i, res := range results {
		if res == nil {
			resp.Results[i] = TrackResultJSON{Error: failDetail}
			failed = true
			continue
		}
		tracks := res.Tracks
		if tracks == nil {
			tracks = [][]int{}
		}
		resp.Results[i] = TrackResultJSON{
			NumTracks:       len(res.Tracks),
			Tracks:          tracks,
			EdgePrecision:   res.EdgeCounts.Precision(),
			EdgeRecall:      res.EdgeCounts.Recall(),
			TrackEfficiency: res.Match.Efficiency(),
			FakeRate:        res.Match.FakeRate(),
		}
	}
	resp.Elapsed = float64(time.Since(start)) / float64(time.Millisecond)
	s.stats.record(time.Since(start), len(events), failed)
	writeReconstructResponse(w, respBinary, &resp)
}

// eventFromJSON validates and converts a wire event. Feature widths
// must match the spec the models were built for, so a missing or ragged
// feature matrix is an error.
func eventFromJSON(spec DetectorSpec, ej *EventJSON) (*Event, error) {
	n := len(ej.Hits)
	if n == 0 {
		return nil, fmt.Errorf("no hits")
	}
	if len(ej.Features) != n {
		return nil, fmt.Errorf("got %d feature rows for %d hits", len(ej.Features), n)
	}
	feat := tensor.New(n, spec.VertexFeatures)
	ev := &Event{Hits: make([]detector.Hit, n)}
	for i, h := range ej.Hits {
		if len(ej.Features[i]) != spec.VertexFeatures {
			return nil, fmt.Errorf("feature row %d has width %d, spec wants %d", i, len(ej.Features[i]), spec.VertexFeatures)
		}
		copy(feat.Row(i), ej.Features[i])
		r, phi := h.R, h.Phi
		if r == 0 && phi == 0 {
			r, phi = math.Hypot(h.X, h.Y), math.Atan2(h.Y, h.X)
		}
		ev.Hits[i] = detector.Hit{
			X: h.X, Y: h.Y, Z: h.Z,
			R: r, Phi: phi,
			Layer: h.Layer, Particle: h.Particle,
		}
	}
	if len(ej.TruthSrc) != len(ej.TruthDst) {
		return nil, fmt.Errorf("truth_src/truth_dst length mismatch")
	}
	for k := range ej.TruthSrc {
		if ej.TruthSrc[k] < 0 || ej.TruthSrc[k] >= n || ej.TruthDst[k] < 0 || ej.TruthDst[k] >= n {
			return nil, fmt.Errorf("truth edge %d out of range", k)
		}
	}
	ev.Features = feat
	ev.TruthSrc = append([]int(nil), ej.TruthSrc...)
	ev.TruthDst = append([]int(nil), ej.TruthDst...)
	return ev, nil
}

// EventToJSON converts an event to its wire form — the inverse of the
// request codec, used by clients and tests.
func EventToJSON(ev *Event) *EventJSON {
	ej := &EventJSON{
		Hits:     make([]HitJSON, ev.NumHits()),
		Features: make([][]float64, ev.NumHits()),
		TruthSrc: append([]int(nil), ev.TruthSrc...),
		TruthDst: append([]int(nil), ev.TruthDst...),
	}
	for i, h := range ev.Hits {
		ej.Hits[i] = HitJSON{X: h.X, Y: h.Y, Z: h.Z, R: h.R, Phi: h.Phi, Layer: h.Layer, Particle: h.Particle}
		ej.Features[i] = append([]float64(nil), ev.Features.Row(i)...)
	}
	return ej
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

// Serve runs the front-end on addr until the context is cancelled, then
// drains gracefully: /healthz flips to draining, new reconstruct work is
// rejected, in-flight requests get up to the drain timeout
// (WithDrainTimeout, default 10s) to finish, and only then is the HTTP
// server torn down — so a SIGTERM under load never truncates a response
// that had already been admitted. It is the programmatic core of
// cmd/serve.
func (s *Server) Serve(ctx context.Context, addr string) error {
	srv := &http.Server{Addr: addr, Handler: s}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), s.drainTimeout)
		defer cancel()
		if drainErr := s.Shutdown(shutCtx); drainErr != nil {
			// Drain budget exhausted with requests still in flight: hard
			// stop — waiting longer would just stall the restart.
			srv.Close()
			return drainErr
		}
		return srv.Shutdown(shutCtx)
	}
}
