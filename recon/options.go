package recon

import (
	"context"
	"fmt"
	"time"

	"repro/internal/ddp"
	"repro/internal/kernels"
)

// KernelWorkersFromContext reports the intra-op worker budget installed
// on ctx by the Reconstructor's serial entry points or by an Engine
// worker (see WithKernelWorkers). Custom stage implementations that run
// their own parallel loops can honour it to stay inside the same
// oversubscription-free budget as the built-in kernels; ignoring it is
// also safe.
func KernelWorkersFromContext(ctx context.Context) int {
	return kernels.From(ctx).Cap()
}

// settings collects everything the functional options control. The
// zero-ish defaults come from pipeline.DefaultConfig for the model
// hyperparameters and from sensible engine defaults for execution.
type settings struct {
	// Stage hyperparameters (override pipeline.DefaultConfig).
	radius       *float64
	maxDegree    *int
	filterThresh *float64
	gnnThreshold *float64
	minTrackHits *int
	gnnHidden    *int
	gnnSteps     *int
	truthLevel   bool
	truthRatio   float64
	skipFilter   bool
	seed         uint64
	precision    Precision

	// Stage implementations (replace the defaults wholesale).
	embedder   Embedder
	builder    GraphBuilder
	filter     EdgeFilter
	classifier EdgeClassifier
	extractor  TrackExtractor

	// Fit knobs for the GNN stage.
	gnnEpochs    int
	gnnLR        float64
	gnnPosWeight float64

	// Engine execution knobs.
	workers        int
	queueDepth     int
	kernelWorkers  int
	tiling         kernels.Tiling
	requestTimeout time.Duration
	batchWindow    time.Duration
	maxBatchEvents int

	// Server robustness knobs.
	drainTimeout time.Duration
	maxBodyBytes int64

	// Gateway knobs (NewShardGateway).
	healthInterval time.Duration
	failThreshold  int
	proxyTimeout   time.Duration

	// Stage middleware (fault injection, tracing).
	wrapper StageWrapper

	// Distributed-training knobs (TrainDistributed).
	ranks       int
	bulkBatches int
	bucketBytes int
	sync        ddp.SyncStrategy
	batchSize   int
	gradBlocks  int

	err error
}

func defaultSettings() settings {
	return settings{
		seed:           1,
		gnnEpochs:      20,
		gnnLR:          3e-3,
		gnnPosWeight:   2.0,
		workers:        1,
		queueDepth:     2,
		maxBatchEvents: 16,
		drainTimeout:   10 * time.Second,
		maxBodyBytes:   8 << 20,

		healthInterval: time.Second,
		failThreshold:  3,
		proxyTimeout:   30 * time.Second,
		ranks:          1,
		bulkBatches:    4,
		sync:           ddp.Coalesced,
		batchSize:      64,
		gradBlocks:     8,
	}
}

// Option configures a Reconstructor or an Engine. Options that do not
// apply to the receiving constructor are ignored, so one option list can
// configure both.
type Option func(*settings)

// fail records the first invalid option; New/NewEngine surface it.
func (s *settings) fail(format string, args ...any) {
	if s.err == nil {
		s.err = fmt.Errorf("recon: %s", fmt.Sprintf(format, args...))
	}
}

// WithRadius sets the fixed-radius graph-construction distance in
// embedding space (stage 2).
func WithRadius(r float64) Option {
	return func(s *settings) {
		if r <= 0 {
			s.fail("WithRadius: radius must be positive, got %v", r)
			return
		}
		s.radius = &r
	}
}

// WithMaxDegree caps per-vertex neighbors during graph construction.
func WithMaxDegree(d int) Option {
	return func(s *settings) {
		if d < 1 {
			s.fail("WithMaxDegree: degree must be ≥1, got %d", d)
			return
		}
		s.maxDegree = &d
	}
}

// WithTruthLevelGraphs swaps stage 2 for a truth-level builder: graphs
// assembled from ground-truth edges plus ratio random fake edges per
// true edge. This is the shortcut the paper's GNN-stage experiments use
// (Figures 3 and 4) to decouple GNN quality from upstream tuning; it
// also skips the embedding computation entirely.
func WithTruthLevelGraphs(ratio float64) Option {
	return func(s *settings) {
		if ratio < 0 {
			s.fail("WithTruthLevelGraphs: ratio must be ≥0, got %v", ratio)
			return
		}
		s.truthLevel = true
		s.truthRatio = ratio
	}
}

// WithoutEdgeFilter removes stage 3 — the filter-skip ablation. Every
// constructed edge reaches the GNN.
func WithoutEdgeFilter() Option {
	return func(s *settings) { s.skipFilter = true }
}

// WithFilterThreshold sets the stage-3 keep threshold on the filter
// MLP's sigmoid score.
func WithFilterThreshold(t float64) Option {
	return func(s *settings) { s.filterThresh = &t }
}

// WithThreshold sets the stage-4 decision threshold: edges scored at or
// above it survive to track building.
func WithThreshold(t float64) Option {
	return func(s *settings) { s.gnnThreshold = &t }
}

// WithMinTrackHits drops track candidates with fewer hits.
func WithMinTrackHits(n int) Option {
	return func(s *settings) {
		if n < 1 {
			s.fail("WithMinTrackHits: need ≥1, got %d", n)
			return
		}
		s.minTrackHits = &n
	}
}

// WithGNN sets the Interaction GNN's hidden width and message-passing
// step count (paper: 64 and 8; defaults are laptop-scale).
func WithGNN(hidden, steps int) Option {
	return func(s *settings) {
		if hidden < 1 || steps < 1 {
			s.fail("WithGNN: hidden and steps must be ≥1, got %d/%d", hidden, steps)
			return
		}
		s.gnnHidden = &hidden
		s.gnnSteps = &steps
	}
}

// WithSeed sets the deterministic initialization seed for the learned
// stages (and the base seed for truth-level graph fakes).
func WithSeed(seed uint64) Option {
	return func(s *settings) { s.seed = seed }
}

// WithGNNTraining sets the Fit hyperparameters for the GNN stage:
// epochs, learning rate, and positive-class weight.
func WithGNNTraining(epochs int, lr, posWeight float64) Option {
	return func(s *settings) {
		if epochs < 1 || lr <= 0 {
			s.fail("WithGNNTraining: need epochs ≥1 and lr > 0, got %d/%v", epochs, lr)
			return
		}
		s.gnnEpochs = epochs
		s.gnnLR = lr
		s.gnnPosWeight = posWeight
	}
}

// WithEmbedder replaces stage 1.
func WithEmbedder(e Embedder) Option {
	return func(s *settings) { s.embedder = e }
}

// WithGraphBuilder replaces stage 2.
func WithGraphBuilder(b GraphBuilder) Option {
	return func(s *settings) { s.builder = b }
}

// WithEdgeFilter replaces stage 3.
func WithEdgeFilter(f EdgeFilter) Option {
	return func(s *settings) { s.filter = f }
}

// WithEdgeClassifier replaces stage 4.
func WithEdgeClassifier(c EdgeClassifier) Option {
	return func(s *settings) { s.classifier = c }
}

// WithTrackExtractor replaces stage 5.
func WithTrackExtractor(x TrackExtractor) Option {
	return func(s *settings) { s.extractor = x }
}

// WithWorkers sets the engine's worker-pool size. Each worker pins one
// workspace arena and processes whole events; n=1 degenerates to serial
// execution. Results are bit-identical at any worker count.
func WithWorkers(n int) Option {
	return func(s *settings) {
		if n < 1 {
			s.fail("WithWorkers: need ≥1, got %d", n)
			return
		}
		s.workers = n
	}
}

// WithQueueDepth bounds the engine's in-flight events beyond the worker
// count: a stream admits at most workers+depth events at once, applying
// backpressure to the producer.
func WithQueueDepth(n int) Option {
	return func(s *settings) {
		if n < 0 {
			s.fail("WithQueueDepth: need ≥0, got %d", n)
			return
		}
		s.queueDepth = n
	}
}

// WithBatchWindow enables request micro-batching on the engine's
// coalesced entry point (ReconstructCoalesced, which the HTTP server
// uses): concurrently-arriving requests are merged into one engine
// batch, amortizing per-dispatch overhead the same way bulk sampling
// amortizes training. The first request to arrive opens a batch and
// waits at most d for company; the batch dispatches early once it holds
// WithMaxBatchEvents events. Because every event is an independent,
// deterministic unit of work, coalescing never changes a result bit —
// it only trades up to d of added latency for throughput. 0 (the
// default) disables coalescing; ReconstructCoalesced then degenerates
// to ReconstructBatch.
func WithBatchWindow(d time.Duration) Option {
	return func(s *settings) {
		if d < 0 {
			s.fail("WithBatchWindow: need ≥0, got %v", d)
			return
		}
		s.batchWindow = d
	}
}

// WithMaxBatchEvents caps how many events a micro-batch accumulates
// before dispatching early, without waiting out the batch window
// (default 16). A single oversized request still dispatches whole.
func WithMaxBatchEvents(n int) Option {
	return func(s *settings) {
		if n < 1 {
			s.fail("WithMaxBatchEvents: need ≥1, got %d", n)
			return
		}
		s.maxBatchEvents = n
	}
}

// WithRequestTimeout puts a per-request deadline on the engine's entry
// points: each ReconstructBatch call (and each streamed event) runs
// under a context that expires after d, propagated into every stage
// call, so one slow or wedged event cannot hold a worker forever. The
// deadline composes with the caller's context (whichever expires first
// wins). 0 (the default) disables the engine-level deadline.
func WithRequestTimeout(d time.Duration) Option {
	return func(s *settings) {
		if d < 0 {
			s.fail("WithRequestTimeout: need ≥0, got %v", d)
			return
		}
		s.requestTimeout = d
	}
}

// WithDrainTimeout bounds how long Server.Serve waits for in-flight
// requests after its context is cancelled (SIGTERM in cmd/serve) before
// giving up on the stragglers. Default 10s.
func WithDrainTimeout(d time.Duration) Option {
	return func(s *settings) {
		if d <= 0 {
			s.fail("WithDrainTimeout: need >0, got %v", d)
			return
		}
		s.drainTimeout = d
	}
}

// WithMaxBodyBytes caps the accepted request body size on the server
// (default 8 MiB); larger bodies are rejected with HTTP 413 before
// decoding.
func WithMaxBodyBytes(n int64) Option {
	return func(s *settings) {
		if n < 1 {
			s.fail("WithMaxBodyBytes: need ≥1, got %d", n)
			return
		}
		s.maxBodyBytes = n
	}
}

// WithHealthInterval sets how often the ShardGateway probes each
// shard's /healthz (default 1s). Shorter intervals detect dead shards
// faster at the cost of probe traffic; proxy failures also count toward
// eviction, so a busy gateway usually notices before the prober does.
func WithHealthInterval(d time.Duration) Option {
	return func(s *settings) {
		if d <= 0 {
			s.fail("WithHealthInterval: need >0, got %v", d)
			return
		}
		s.healthInterval = d
	}
}

// WithFailThreshold sets how many consecutive failures (health probes
// or proxied sub-requests) evict a shard from the ShardGateway's ring
// (default 3). An evicted shard receives no traffic until a probe
// succeeds again.
func WithFailThreshold(n int) Option {
	return func(s *settings) {
		if n < 1 {
			s.fail("WithFailThreshold: need ≥1, got %d", n)
			return
		}
		s.failThreshold = n
	}
}

// WithProxyTimeout bounds each sub-request the ShardGateway proxies to
// a shard, health probes included (default 30s). An expired sub-request
// counts as a shard failure and falls back to another shard.
func WithProxyTimeout(d time.Duration) Option {
	return func(s *settings) {
		if d <= 0 {
			s.fail("WithProxyTimeout: need >0, got %v", d)
			return
		}
		s.proxyTimeout = d
	}
}

// StageWrapper is middleware over the five assembled stages — the seam
// the fault-injection harness (internal/faultinject) and tracing hook
// into. Each Wrap method receives the stage the Reconstructor resolved
// (default or option-supplied) and returns the stage to run; returning
// the argument unchanged is a no-op.
type StageWrapper interface {
	WrapEmbedder(Embedder) Embedder
	WrapGraphBuilder(GraphBuilder) GraphBuilder
	WrapEdgeFilter(EdgeFilter) EdgeFilter
	WrapEdgeClassifier(EdgeClassifier) EdgeClassifier
	WrapTrackExtractor(TrackExtractor) TrackExtractor
}

// WithStageWrapper installs middleware around all five stages after
// defaults and per-stage options resolve. Wrapped stages run under the
// same panic isolation as any other stage implementation.
func WithStageWrapper(w StageWrapper) Option {
	return func(s *settings) { s.wrapper = w }
}

// WithKernelWorkers bounds the intra-op parallelism of the hot kernels
// (GEMM, SpGEMM, SpMM, fused gathers) inside a single Reconstruct call
// or TrainDistributed rank. 0 (the default) derives the budget
// automatically: GOMAXPROCS for serial use, divided by the worker or
// rank count when an Engine or TrainDistributed runs units
// concurrently, so inter-op × intra-op parallelism never oversubscribes
// the host (an explicit request is likewise capped by that rule).
// Results are bit-identical at every value — this is purely a
// performance knob.
func WithKernelWorkers(n int) Option {
	return func(s *settings) {
		if n < 0 {
			s.fail("WithKernelWorkers: need ≥0, got %d", n)
			return
		}
		s.kernelWorkers = n
	}
}

// Tiling is the per-precision cache-blocking configuration of the hot
// kernels — re-exported from the internal kernel layer so callers (and
// the examples, which cannot import internal packages) can name it.
type Tiling = kernels.Tiling

// TileShape is one precision's cache-blocking shape: the GEMM register
// block (MR rows × 4 columns), the GEMM panel width JB, and the
// sparse-aggregation column band width. Zero fields resolve to the
// tuned process defaults; negative MR or Band selects the untiled flat
// kernel for that axis.
type TileShape = kernels.TileShape

// DefaultTiling returns the process-default tile shapes the kernels run
// at when no override is installed — the shapes the tile-sweep
// autotuner (cmd/bench -tile-sweep) selected for this build.
func DefaultTiling() Tiling { return kernels.DefaultTiling() }

// WithTiling overrides the cache-blocking tile shapes of the hot
// kernels for this Reconstructor or Engine. Tiles are a pure layout
// knob: results are bit-identical at every shape (including the flat
// kernels selected by negative fields) — only cache behaviour changes.
// The zero Tiling (and any zero field) resolves to DefaultTiling, so
// serving runs tuned tiles with no configuration at all; reach for
// this option only to pin shapes measured on a specific host (see
// cmd/bench -tile-sweep) or to disable tiling when comparing against
// the flat baselines.
func WithTiling(t Tiling) Option {
	return func(s *settings) { s.tiling = t }
}

// WithRanks sets the number of simulated DDP ranks P for
// TrainDistributed. The trained model is bit-identical at every P.
func WithRanks(p int) Option {
	return func(s *settings) {
		if p < 1 {
			s.fail("WithRanks: need ≥1, got %d", p)
			return
		}
		s.ranks = p
	}
}

// WithBulkBatches sets k, the number of consecutive batches stacked into
// one bulk matrix-sampler invocation per rank — the paper's utilization
// optimization. A pure performance knob: results are bit-identical at
// every k.
func WithBulkBatches(k int) Option {
	return func(s *settings) {
		if k < 1 {
			s.fail("WithBulkBatches: need ≥1, got %d", k)
			return
		}
		s.bulkBatches = k
	}
}

// WithBucketBytes caps each gradient bucket for the bucketed-overlap
// sync strategy (0 = ddp.DefaultBucketBytes).
func WithBucketBytes(n int) Option {
	return func(s *settings) {
		if n < 0 {
			s.fail("WithBucketBytes: need ≥0, got %d", n)
			return
		}
		s.bucketBytes = n
	}
}

// WithSyncStrategy selects how TrainDistributed synchronizes gradients:
// PerMatrixSync (baseline), CoalescedSync (the paper's optimization), or
// BucketedSync (coalescing overlapped with backward). The strategy
// changes which collectives are issued and charged, never the numbers.
func WithSyncStrategy(strategy SyncStrategy) Option {
	return func(s *settings) {
		switch strategy {
		case ddp.PerMatrix, ddp.Coalesced, ddp.Bucketed:
			s.sync = strategy
		default:
			s.fail("WithSyncStrategy: unknown strategy %d", strategy)
		}
	}
}

// WithBatchSize sets the global batch (ShaDow roots per optimizer step)
// for TrainDistributed.
func WithBatchSize(n int) Option {
	return func(s *settings) {
		if n < 1 {
			s.fail("WithBatchSize: need ≥1, got %d", n)
			return
		}
		s.batchSize = n
	}
}

// WithGradBlocks sets the number of canonical gradient micro-blocks per
// step — the leaves of the fixed reduction tree that makes training
// bitwise independent of the rank count. It must stay the same across
// runs that are expected to match exactly.
func WithGradBlocks(g int) Option {
	return func(s *settings) {
		if g < 1 {
			s.fail("WithGradBlocks: need ≥1, got %d", g)
			return
		}
		s.gradBlocks = g
	}
}

func applyOptions(opts []Option) (settings, error) {
	s := defaultSettings()
	for _, o := range opts {
		if o != nil {
			o(&s)
		}
	}
	return s, s.err
}
