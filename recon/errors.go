package recon

import (
	"errors"
	"fmt"
)

// ErrOverloaded is returned by Engine entry points when the admission
// window (workers + queueDepth in-flight events) is full: the request is
// rejected immediately instead of queueing without bound. Servers map it
// to HTTP 429 with a Retry-After hint; clients should back off and
// retry.
var ErrOverloaded = errors.New("recon: engine overloaded, admission queue full")

// ErrDraining is returned (and served as HTTP 503) once a Server has
// begun graceful shutdown: in-flight requests finish, new work is
// rejected.
var ErrDraining = errors.New("recon: server draining")

// StageError is a per-event stage failure, including a panic recovered
// from a stage implementation. One poisoned event degrades exactly one
// result: batch siblings keep their slots and stream siblings keep
// flowing, while the failing event's outcome carries the StageError.
type StageError struct {
	Stage string // which stage failed: embed, build, filter, classify, extract, engine
	Event int    // submission index within the batch/stream, -1 when unknown
	Panic any    // the recovered panic value, nil for ordinary errors
	Err   error  // the underlying error, nil for pure panics
	Stack []byte // goroutine stack captured at the recovery point
}

func (e *StageError) Error() string {
	where := e.Stage
	if e.Event >= 0 {
		where = fmt.Sprintf("%s, event %d", e.Stage, e.Event)
	}
	if e.Panic != nil {
		return fmt.Sprintf("recon: stage panic (%s): %v", where, e.Panic)
	}
	return fmt.Sprintf("recon: stage failure (%s): %v", where, e.Err)
}

// Unwrap exposes the underlying error to errors.Is/As chains.
func (e *StageError) Unwrap() error { return e.Err }

// IsPanic reports whether the failure was a recovered panic.
func (e *StageError) IsPanic() bool { return e.Panic != nil }

// AsStageError extracts a *StageError from an error chain, or nil.
func AsStageError(err error) *StageError {
	var se *StageError
	if errors.As(err, &se) {
		return se
	}
	return nil
}
