package recon

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"io"
	"mime"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/transport"
	"repro/recon/wire"
)

// ShardState is a shard's health as the gateway sees it.
type ShardState int32

const (
	// ShardHealthy: the shard answers /healthz and receives traffic.
	ShardHealthy ShardState = iota
	// ShardSuspect: recent probe or proxy failures; the shard is skipped
	// for new routing until a probe succeeds, but not yet written off.
	ShardSuspect
	// ShardEvicted: the failure threshold was crossed. No traffic routes
	// there until the health loop sees it answer again.
	ShardEvicted
)

func (s ShardState) String() string {
	switch s {
	case ShardHealthy:
		return "healthy"
	case ShardSuspect:
		return "suspect"
	case ShardEvicted:
		return "evicted"
	default:
		return fmt.Sprintf("state(%d)", int32(s))
	}
}

// gwShard is one backend engine shard plus the gateway's view of it.
type gwShard struct {
	name string
	base string // http://host:port, no trailing slash

	state    atomic.Int32 // ShardState
	fails    atomic.Int32 // consecutive probe/proxy failures
	inflight atomic.Int64 // sub-requests currently proxied here

	routed    atomic.Int64 // events successfully served by this shard
	rejected  atomic.Int64 // 429s this shard answered
	errors    atomic.Int64 // transport/5xx failures proxying to it
	evictions atomic.Int64 // times the gateway evicted it
}

func (s *gwShard) State() ShardState { return ShardState(s.state.Load()) }

// ShardStatsJSON is one shard's row in the gateway's /statz reply.
type ShardStatsJSON struct {
	Name      string `json:"name"`
	URL       string `json:"url"`
	State     string `json:"state"`
	Routed    int64  `json:"routed_events"`
	Rejected  int64  `json:"rejected"`
	Errors    int64  `json:"errors"`
	Evictions int64  `json:"evictions"`
	InFlight  int64  `json:"in_flight"`
}

// GatewayStatsJSON is the gateway's GET /statz reply.
type GatewayStatsJSON struct {
	UptimeSeconds float64          `json:"uptime_s"`
	Requests      int64            `json:"requests"`
	Events        int64            `json:"events"`
	Rejected      int64            `json:"rejected_requests"`
	Rerouted      int64            `json:"rerouted"`
	Errors        int64            `json:"errors"`
	Draining      bool             `json:"draining"`
	Shards        []ShardStatsJSON `json:"shards"`
}

// ringEntry is one virtual node on the consistent-hash ring.
type ringEntry struct {
	hash  uint64
	shard int
}

// gatewayVnodes is the number of virtual nodes per shard on the ring —
// enough that removing one shard moves only ~1/N of the keyspace and the
// per-shard load imbalance stays within a few percent.
const gatewayVnodes = 64

// ShardGateway partitions reconstruction traffic across engine shards
// (cmd/serve processes) and presents the same HTTP surface as a single
// Server: POST /v1/reconstruct, GET /healthz, GET /statz.
//
// Routing: each explicit event is keyed by the FNV-1a hash of its wire
// form and placed on a consistent-hash ring (gatewayVnodes virtual nodes
// per shard), so a stable event population keeps hitting the same shard
// across requests — warm arenas, stable latency — and adding or removing
// a shard only moves ~1/N of the keyspace. A synthetic block is keyed by
// its (count, seed). When the ring's pick is not healthy, or the shard
// answers 429, the sub-request falls back to the least-loaded healthy
// shard (fewest in-flight sub-requests). Because every shard runs the
// same deterministic engine, rerouting never changes a single result
// bit — only which process computes it.
//
// Health: a background loop (Start) probes every shard's /healthz. After
// FailThreshold consecutive failures — probe or proxy — the shard is
// evicted: no traffic routes there until a probe succeeds again, which
// restores it to healthy. A shard that reports draining is treated as
// failing (its load balancer told us to go away).
//
// Degradation follows the PR 6 admission contract: when every shard is
// saturated the gateway answers 429 + Retry-After; when no shard is
// available at all, or the gateway itself is draining, it answers 503.
type ShardGateway struct {
	shards []*gwShard
	ring   []ringEntry // sorted by hash

	client         *http.Client
	proxyTimeout   time.Duration
	healthInterval time.Duration
	failThreshold  int
	maxBody        int64
	drainTimeout   time.Duration

	mux   *http.ServeMux
	stats *serverStats

	rerouted atomic.Int64
	rejected atomic.Int64
	gwErrors atomic.Int64

	draining  atomic.Bool
	inflight  sync.WaitGroup
	startOnce sync.Once
}

// NewShardGateway builds a gateway over the given shard base URLs
// (e.g. "http://127.0.0.1:8081"). Relevant options: WithHealthInterval,
// WithFailThreshold, WithProxyTimeout, WithMaxBodyBytes,
// WithDrainTimeout. Call Start (or Serve, which does) to begin health
// probing; shards start healthy and are demoted by evidence.
func NewShardGateway(shardURLs []string, opts ...Option) (*ShardGateway, error) {
	if len(shardURLs) == 0 {
		return nil, fmt.Errorf("recon: gateway needs at least one shard")
	}
	set, err := applyOptions(opts)
	if err != nil {
		return nil, err
	}
	g := &ShardGateway{
		client:         &http.Client{},
		proxyTimeout:   set.proxyTimeout,
		healthInterval: set.healthInterval,
		failThreshold:  set.failThreshold,
		maxBody:        set.maxBodyBytes,
		drainTimeout:   set.drainTimeout,
		mux:            http.NewServeMux(),
		stats:          newServerStats(),
	}
	seen := make(map[string]bool)
	for i, u := range shardURLs {
		base := trimSlash(u)
		if base == "" {
			return nil, fmt.Errorf("recon: gateway shard %d: empty URL", i)
		}
		if seen[base] {
			return nil, fmt.Errorf("recon: gateway shard %q listed twice", base)
		}
		seen[base] = true
		g.shards = append(g.shards, &gwShard{name: fmt.Sprintf("shard-%d", i), base: base})
	}
	for i, s := range g.shards {
		for v := 0; v < gatewayVnodes; v++ {
			g.ring = append(g.ring, ringEntry{hash: hashKey(fmt.Sprintf("%s#%d", s.base, v)), shard: i})
		}
	}
	sort.Slice(g.ring, func(i, j int) bool { return g.ring[i].hash < g.ring[j].hash })
	g.mux.HandleFunc("GET /healthz", g.handleHealthz)
	g.mux.HandleFunc("GET /statz", g.handleStatz)
	g.mux.HandleFunc("POST /v1/reconstruct", g.handleReconstruct)
	return g, nil
}

func trimSlash(u string) string {
	for len(u) > 0 && u[len(u)-1] == '/' {
		u = u[:len(u)-1]
	}
	return u
}

func hashKey(s string) uint64 {
	h := fnv.New64a()
	_, _ = io.WriteString(h, s)
	return h.Sum64()
}

// ServeHTTP implements http.Handler.
func (g *ShardGateway) ServeHTTP(w http.ResponseWriter, r *http.Request) { g.mux.ServeHTTP(w, r) }

// Start launches the background health loop; it stops when ctx is
// cancelled. Safe to call once; Serve calls it for you.
func (g *ShardGateway) Start(ctx context.Context) {
	g.startOnce.Do(func() {
		go g.healthLoop(ctx)
	})
}

// Draining reports whether graceful shutdown has begun.
func (g *ShardGateway) Draining() bool { return g.draining.Load() }

// Shutdown begins a graceful drain, mirroring Server.Shutdown: /healthz
// flips to draining, new reconstruct requests get 503, and the call
// blocks until in-flight requests finish or ctx expires.
func (g *ShardGateway) Shutdown(ctx context.Context) error {
	g.draining.Store(true)
	done := make(chan struct{})
	go func() { g.inflight.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Serve runs the gateway on addr until ctx is cancelled, then drains
// gracefully exactly like Server.Serve.
func (g *ShardGateway) Serve(ctx context.Context, addr string) error {
	g.Start(ctx)
	srv := &http.Server{Addr: addr, Handler: g}
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		shutCtx, cancel := context.WithTimeout(context.Background(), g.drainTimeout)
		defer cancel()
		if drainErr := g.Shutdown(shutCtx); drainErr != nil {
			srv.Close()
			return drainErr
		}
		return srv.Shutdown(shutCtx)
	}
}

// healthLoop probes every shard until ctx is cancelled.
func (g *ShardGateway) healthLoop(ctx context.Context) {
	ticker := time.NewTicker(g.healthInterval)
	defer ticker.Stop()
	for {
		g.probeAll(ctx)
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
	}
}

func (g *ShardGateway) probeAll(ctx context.Context) {
	var wg sync.WaitGroup
	for _, s := range g.shards {
		wg.Add(1)
		go func(s *gwShard) {
			defer wg.Done()
			g.probe(ctx, s)
		}(s)
	}
	wg.Wait()
}

// probe hits one shard's /healthz and applies the verdict.
func (g *ShardGateway) probe(ctx context.Context, s *gwShard) {
	pctx, cancel := context.WithTimeout(ctx, g.proxyTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(pctx, http.MethodGet, s.base+"/healthz", nil)
	if err != nil {
		g.recordFailure(s)
		return
	}
	resp, err := g.client.Do(req)
	if err != nil {
		g.recordFailure(s)
		return
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// Draining shards answer 503: stop routing there, same as down.
		g.recordFailure(s)
		return
	}
	g.recordSuccess(s)
}

// recordFailure notes one probe/proxy failure and evicts the shard once
// the consecutive-failure threshold is crossed.
func (g *ShardGateway) recordFailure(s *gwShard) {
	n := s.fails.Add(1)
	if int(n) >= g.failThreshold {
		if s.state.Swap(int32(ShardEvicted)) != int32(ShardEvicted) {
			s.evictions.Add(1)
		}
		return
	}
	s.state.CompareAndSwap(int32(ShardHealthy), int32(ShardSuspect))
}

// recordSuccess restores a shard to healthy (revival after eviction
// included — the health loop is the only way back in).
func (g *ShardGateway) recordSuccess(s *gwShard) {
	s.fails.Store(0)
	s.state.Store(int32(ShardHealthy))
}

func (g *ShardGateway) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if g.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
		return
	}
	if g.healthyCount() == 0 {
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "no healthy shards"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (g *ShardGateway) healthyCount() int {
	n := 0
	for _, s := range g.shards {
		if s.State() == ShardHealthy {
			n++
		}
	}
	return n
}

func (g *ShardGateway) handleStatz(w http.ResponseWriter, _ *http.Request) {
	base := g.stats.snapshot(0, "")
	out := GatewayStatsJSON{
		UptimeSeconds: base.UptimeSeconds,
		Requests:      base.Requests,
		Events:        base.Events,
		Rejected:      g.rejected.Load(),
		Rerouted:      g.rerouted.Load(),
		Errors:        g.gwErrors.Load(),
		Draining:      g.draining.Load(),
	}
	for _, s := range g.shards {
		out.Shards = append(out.Shards, ShardStatsJSON{
			Name:      s.name,
			URL:       s.base,
			State:     s.State().String(),
			Routed:    s.routed.Load(),
			Rejected:  s.rejected.Load(),
			Errors:    s.errors.Load(),
			Evictions: s.evictions.Load(),
			InFlight:  s.inflight.Load(),
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// PickShard returns the index of the shard the consistent-hash ring
// assigns to key, skipping shards that are not healthy; ok is false when
// no healthy shard exists. Exported for routing tests and benchmarks —
// the serving path goes through the HTTP handler.
func (g *ShardGateway) PickShard(key uint64) (int, bool) {
	if len(g.ring) == 0 {
		return 0, false
	}
	start := sort.Search(len(g.ring), func(i int) bool { return g.ring[i].hash >= key })
	for off := 0; off < len(g.ring); off++ {
		e := g.ring[(start+off)%len(g.ring)]
		if g.shards[e.shard].State() == ShardHealthy {
			return e.shard, true
		}
	}
	return 0, false
}

// leastLoaded returns the healthy shard with the fewest in-flight
// sub-requests, excluding `not` (pass -1 to exclude none).
func (g *ShardGateway) leastLoaded(not int) (int, bool) {
	best, bestLoad := -1, int64(0)
	for i, s := range g.shards {
		if i == not || s.State() != ShardHealthy {
			continue
		}
		load := s.inflight.Load()
		if best == -1 || load < bestLoad {
			best, bestLoad = i, load
		}
	}
	return best, best != -1
}

// eventKey keys one explicit event for the ring: the FNV-1a hash of its
// wire form, so the same event routes to the same shard on every
// request (while any two shards would compute bitwise-identical results
// anyway — the key only controls locality).
func eventKey(ej *EventJSON) uint64 {
	h := fnv.New64a()
	enc := json.NewEncoder(h)
	_ = enc.Encode(ej)
	return h.Sum64()
}

// shardGroup is the slice of one upstream request routed to one shard.
type shardGroup struct {
	shard     int
	events    []EventJSON
	positions []int // result slot in the upstream response per event
	synthetic *SyntheticJSON
	synthPos  []int // result slots for the synthetic block
}

// gatewayError classifies a sub-request failure into the status the
// gateway must answer with. For 429s, retryAfter carries the shard's
// own Retry-After hint so the proxy preserves it upstream.
type gatewayError struct {
	status     int
	msg        string
	retryAfter string
}

func (e *gatewayError) Error() string { return e.msg }

func (g *ShardGateway) handleReconstruct(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	g.inflight.Add(1)
	defer g.inflight.Done()
	if g.draining.Load() {
		g.stats.record(time.Since(start), 0, true)
		writeJSON(w, http.StatusServiceUnavailable, map[string]string{"error": ErrDraining.Error()})
		return
	}
	reqp, reqBinary, status, derr := decodeReconstructRequest(w, r, g.maxBody)
	if derr != nil {
		g.stats.record(time.Since(start), 0, true)
		writeJSON(w, status, map[string]string{"error": derr.Error()})
		return
	}
	req := *reqp
	respBinary := wantBinaryResponse(r, reqBinary)

	synthCount := 0
	if req.Synthetic != nil {
		synthCount = req.Synthetic.Count
		if synthCount <= 0 {
			synthCount = 1
		}
	}
	total := len(req.Events) + synthCount
	if total == 0 {
		g.stats.record(time.Since(start), 0, true)
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": "no events: supply events or synthetic"})
		return
	}

	groups, gerr := g.partition(&req, synthCount)
	if gerr != nil {
		g.failRequest(w, start, gerr)
		return
	}

	// Fan out: each shard group proxies concurrently; results land in
	// their original slots so the merged response is order-preserving.
	results := make([]TrackResultJSON, total)
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr *gatewayError
	)
	for _, grp := range groups {
		wg.Add(1)
		go func(grp shardGroup) {
			defer wg.Done()
			sub, err := g.proxyGroup(r.Context(), grp)
			if err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
				return
			}
			mu.Lock()
			for i, pos := range grp.positions {
				results[pos] = sub.Results[i]
			}
			for i, pos := range grp.synthPos {
				results[pos] = sub.Results[len(grp.positions)+i]
			}
			mu.Unlock()
		}(grp)
	}
	wg.Wait()
	if firstErr != nil {
		g.failRequest(w, start, firstErr)
		return
	}
	g.stats.record(time.Since(start), total, false)
	writeReconstructResponse(w, respBinary, &ReconstructResponse{
		Results: results,
		Elapsed: float64(time.Since(start)) / float64(time.Millisecond),
	})
}

func (g *ShardGateway) failRequest(w http.ResponseWriter, start time.Time, gerr *gatewayError) {
	g.stats.record(time.Since(start), 0, true)
	switch gerr.status {
	case http.StatusTooManyRequests:
		g.rejected.Add(1)
		// Preserve the shard's own backoff hint; fall back to 1s only
		// when the upstream 429 carried none.
		retry := gerr.retryAfter
		if retry == "" {
			retry = "1"
		}
		w.Header().Set("Retry-After", retry)
	case http.StatusServiceUnavailable:
		g.gwErrors.Add(1)
	}
	writeJSON(w, gerr.status, map[string]string{"error": gerr.msg})
}

// partition splits the upstream request into per-shard groups along the
// consistent-hash ring. The synthetic block (if any) is routed whole,
// keyed by (count, seed) — the shard generates it from its own spec.
func (g *ShardGateway) partition(req *ReconstructRequest, synthCount int) ([]shardGroup, *gatewayError) {
	byShard := make(map[int]*shardGroup)
	grab := func(shard int) *shardGroup {
		grp, ok := byShard[shard]
		if !ok {
			grp = &shardGroup{shard: shard}
			byShard[shard] = grp
		}
		return grp
	}
	for i := range req.Events {
		shard, ok := g.PickShard(eventKey(&req.Events[i]))
		if !ok {
			return nil, &gatewayError{status: http.StatusServiceUnavailable, msg: "no healthy shards"}
		}
		grp := grab(shard)
		grp.events = append(grp.events, req.Events[i])
		grp.positions = append(grp.positions, i)
	}
	if req.Synthetic != nil {
		shard, ok := g.PickShard(hashKey(fmt.Sprintf("synthetic/%d/%d", req.Synthetic.Count, req.Synthetic.Seed)))
		if !ok {
			return nil, &gatewayError{status: http.StatusServiceUnavailable, msg: "no healthy shards"}
		}
		grp := grab(shard)
		grp.synthetic = req.Synthetic
		for k := 0; k < synthCount; k++ {
			grp.synthPos = append(grp.synthPos, len(req.Events)+k)
		}
	}
	groups := make([]shardGroup, 0, len(byShard))
	for _, grp := range byShard {
		groups = append(groups, *grp)
	}
	return groups, nil
}

// proxyGroup sends one shard group downstream, falling back to the
// least-loaded healthy shard when the primary fails or answers 429. A
// transport failure counts toward the primary's eviction threshold, so
// a shard that stops responding is drained out of the ring after
// FailThreshold consecutive strikes without waiting for the next probe.
func (g *ShardGateway) proxyGroup(ctx context.Context, grp shardGroup) (*ReconstructResponse, *gatewayError) {
	// Sub-requests travel in the binary wire format: the shard fleet is
	// our own, so no JSON fallback is needed inside the cluster, and hit
	// payloads skip the float-to-decimal round trip entirely.
	sub := ReconstructRequest{Events: grp.events, Synthetic: grp.synthetic}
	body, err := wire.AppendRequest(nil, &sub)
	if err != nil {
		return nil, &gatewayError{status: http.StatusInternalServerError, msg: "marshal sub-request: " + err.Error()}
	}
	want := len(grp.positions) + len(grp.synthPos)

	resp, gerr := g.proxyOnce(ctx, grp.shard, body, want)
	if gerr == nil {
		return resp, nil
	}
	if gerr.status == http.StatusBadRequest {
		// The shard judged the payload malformed; rerouting cannot fix a
		// client error.
		return nil, gerr
	}
	// Fall back: any healthy shard computes the same bits.
	alt, ok := g.leastLoaded(grp.shard)
	if !ok {
		if gerr.status == http.StatusTooManyRequests {
			return nil, gerr
		}
		return nil, &gatewayError{status: http.StatusServiceUnavailable, msg: "no healthy shards"}
	}
	g.rerouted.Add(1)
	resp, gerr2 := g.proxyOnce(ctx, alt, body, want)
	if gerr2 == nil {
		return resp, nil
	}
	return nil, gerr2
}

// proxyOnce performs one sub-request against one shard and classifies
// the outcome.
func (g *ShardGateway) proxyOnce(ctx context.Context, shard int, body []byte, want int) (*ReconstructResponse, *gatewayError) {
	s := g.shards[shard]
	s.inflight.Add(1)
	defer s.inflight.Add(-1)

	pctx := ctx
	if g.proxyTimeout > 0 {
		var cancel context.CancelFunc
		pctx, cancel = context.WithTimeout(ctx, g.proxyTimeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(pctx, http.MethodPost, s.base+"/v1/reconstruct", bytes.NewReader(body))
	if err != nil {
		return nil, &gatewayError{status: http.StatusInternalServerError, msg: err.Error()}
	}
	req.Header.Set("Content-Type", wire.ContentTypeBinary)
	req.Header.Set("Accept", wire.ContentTypeBinary)
	resp, err := g.client.Do(req)
	if err != nil {
		s.errors.Add(1)
		g.recordFailure(s)
		return nil, &gatewayError{status: http.StatusServiceUnavailable, msg: fmt.Sprintf("shard %s unreachable: %v", s.name, err)}
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	switch resp.StatusCode {
	case http.StatusOK:
		sr, err := decodeShardResponse(resp)
		if err != nil {
			s.errors.Add(1)
			g.recordFailure(s)
			return nil, &gatewayError{status: http.StatusServiceUnavailable, msg: fmt.Sprintf("shard %s: bad response: %v", s.name, err)}
		}
		if len(sr.Results) != want {
			s.errors.Add(1)
			g.recordFailure(s)
			return nil, &gatewayError{status: http.StatusServiceUnavailable,
				msg: fmt.Sprintf("shard %s: %d results for %d events", s.name, len(sr.Results), want)}
		}
		s.routed.Add(int64(want))
		g.recordSuccess(s)
		return sr, nil
	case http.StatusTooManyRequests:
		// Admission rejection is load, not ill health: the shard is alive
		// and fast-failing exactly as designed.
		s.rejected.Add(1)
		return nil, &gatewayError{
			status:     http.StatusTooManyRequests,
			msg:        readErrBody(resp.Body, "shard overloaded"),
			retryAfter: resp.Header.Get("Retry-After"),
		}
	case http.StatusBadRequest:
		return nil, &gatewayError{status: http.StatusBadRequest, msg: readErrBody(resp.Body, "bad request")}
	default:
		s.errors.Add(1)
		g.recordFailure(s)
		return nil, &gatewayError{status: http.StatusServiceUnavailable,
			msg: fmt.Sprintf("shard %s answered %d", s.name, resp.StatusCode)}
	}
}

// decodeShardResponse decodes a shard's 200 reply by its Content-Type:
// binary from an up-to-date shard, JSON from one that predates the wire
// format (mixed fleets mid-rollout).
func decodeShardResponse(resp *http.Response) (*ReconstructResponse, error) {
	if mt, _, err := mime.ParseMediaType(resp.Header.Get("Content-Type")); err == nil && mt == wire.ContentTypeBinary {
		body, err := io.ReadAll(io.LimitReader(resp.Body, int64(transport.DefaultMaxFrameBytes)+64))
		if err != nil {
			return nil, err
		}
		return wire.DecodeResponse(body)
	}
	var sr ReconstructResponse
	if err := json.NewDecoder(resp.Body).Decode(&sr); err != nil {
		return nil, err
	}
	return &sr, nil
}

// readErrBody extracts the {"error": ...} detail a shard answered with.
func readErrBody(r io.Reader, fallback string) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.NewDecoder(io.LimitReader(r, 4096)).Decode(&e) == nil && e.Error != "" {
		return e.Error
	}
	return fallback
}
