package recon

import (
	"context"
	"math"
	"path/filepath"
	"testing"

	"repro/internal/detector"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// precisionFixture builds a small trained f64 reconstructor plus an
// untrained twin at the requested precision, weight-synced through a
// checkpoint — the serve deployment shape (train once, load anywhere).
func precisionFixture(t *testing.T, dir string, prec Precision, opts ...Option) (*Reconstructor, *Reconstructor, []*Event) {
	t.Helper()
	spec := detector.Ex3Like(0.02)
	spec.NumEvents = 3
	ds := detector.Generate(spec, 5)
	train, test := ds.Events[:2], ds.Events[2:]

	base := append([]Option{WithSeed(9), WithGNN(8, 2)}, opts...)
	r64, err := New(spec, base...)
	if err != nil {
		t.Fatal(err)
	}
	if err := r64.Fit(context.Background(), train); err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(dir, "model.ckpt.gz")
	if err := r64.SaveCheckpoint(ckpt); err != nil {
		t.Fatal(err)
	}

	rp, err := New(spec, append(append([]Option{}, base...), WithPrecision(prec))...)
	if err != nil {
		t.Fatal(err)
	}
	if err := rp.LoadCheckpoint(ckpt); err != nil {
		t.Fatal(err)
	}
	return r64, rp, test
}

// TestWithPrecisionF64IsDefaultPath pins that WithPrecision(Float64)
// leaves the historical stages in place — results bitwise identical to
// an option-free reconstructor.
func TestWithPrecisionF64IsDefaultPath(t *testing.T) {
	r64, rp, test := precisionFixture(t, t.TempDir(), Float64)
	ctx := context.Background()
	for _, ev := range test {
		a, err := r64.Reconstruct(ctx, ev)
		if err != nil {
			t.Fatal(err)
		}
		b, err := rp.Reconstruct(ctx, ev)
		if err != nil {
			t.Fatal(err)
		}
		if a.Match.Efficiency() != b.Match.Efficiency() || a.EdgeCounts.Precision() != b.EdgeCounts.Precision() {
			t.Fatalf("Float64 precision changed results: eff %v vs %v, purity %v vs %v",
				a.Match.Efficiency(), b.Match.Efficiency(), a.EdgeCounts.Precision(), b.EdgeCounts.Precision())
		}
		if len(a.Tracks) != len(b.Tracks) {
			t.Fatalf("Float64 precision changed track count: %d vs %d", len(a.Tracks), len(b.Tracks))
		}
	}
}

// precisionBudget is the documented accuracy budget every reduced
// precision must hold against float64 (PERF.md "Accuracy budget"):
// ±0.02 absolute on test-set track efficiency and on per-event edge
// purity. The budget lives here, in exactly one place, for the f32 and
// i8 paths alike.
const precisionBudget = 0.02

// assertTrackParity enforces the accuracy budget: rp's reconstruction
// must reproduce r64's per-event edge purity and test-set track
// efficiency (matched/reconstructable aggregated across events — the
// Table-1 methodology, which keeps single-track granularity on tiny
// fixture events from swamping the comparison) within tol.
func assertTrackParity(t *testing.T, r64, rp *Reconstructor, test []*Event, tol float64) {
	t.Helper()
	ctx := context.Background()
	var matched64, recon64, matchedP, reconP int
	for i, ev := range test {
		a, err := r64.Reconstruct(ctx, ev)
		if err != nil {
			t.Fatal(err)
		}
		b, err := rp.Reconstruct(ctx, ev)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a.EdgeCounts.Precision()-b.EdgeCounts.Precision()) > tol {
			t.Fatalf("event %d: %s edge purity %v vs f64 %v (tol %v)",
				i, rp.Precision(), b.EdgeCounts.Precision(), a.EdgeCounts.Precision(), tol)
		}
		matched64 += a.Match.Matched
		recon64 += a.Match.Reconstructable
		matchedP += b.Match.Matched
		reconP += b.Match.Reconstructable
	}
	if recon64 == 0 || reconP == 0 {
		t.Fatal("no reconstructable particles in the parity fixture")
	}
	eff64 := float64(matched64) / float64(recon64)
	effP := float64(matchedP) / float64(reconP)
	if math.Abs(eff64-effP) > tol {
		t.Fatalf("%s test-set efficiency %v vs f64 %v (tol %v)", rp.Precision(), effP, eff64, tol)
	}
}

// parityFixture is precisionFixture with a long enough GNN training run
// that edge scores separate from the decision threshold — the regime
// the accuracy budget is defined over (quantization shifts scores by
// ~1e-2; an undertrained model parks every score at the threshold and
// makes any precision comparison noise).
func parityFixture(t *testing.T, dir string, prec Precision) (*Reconstructor, *Reconstructor, []*Event) {
	t.Helper()
	spec := detector.Ex3Like(0.02)
	spec.NumEvents = 6
	ds := detector.Generate(spec, 5)
	train, test := ds.Events[:3], ds.Events[3:]

	base := []Option{WithSeed(9), WithGNN(8, 2), WithGNNTraining(60, 3e-3, 2.0)}
	r64, err := New(spec, base...)
	if err != nil {
		t.Fatal(err)
	}
	if err := r64.Fit(context.Background(), train); err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(dir, "model.ckpt.gz")
	if prec == Int8 {
		// The canonical quantized workflow: the fitted reconstructor
		// exports a v4 checkpoint, calibrating activations on its own
		// training events. (Loading a plain float checkpoint at Int8
		// also works but calibrates on the synthetic fallback batch,
		// which is a smoke-serving convenience, not the path the
		// accuracy budget is defined over.)
		if err := r64.SaveCheckpointInt8(ckpt); err != nil {
			t.Fatal(err)
		}
	} else if err := r64.SaveCheckpoint(ckpt); err != nil {
		t.Fatal(err)
	}
	rp, err := New(spec, append(append([]Option{}, base...), WithPrecision(prec))...)
	if err != nil {
		t.Fatal(err)
	}
	if err := rp.LoadCheckpoint(ckpt); err != nil {
		t.Fatal(err)
	}
	return r64, rp, test
}

// TestWithPrecisionF32TrackParity is the acceptance gate for the
// float32 serving path: float32 reconstruction through all five stages
// holds the shared accuracy budget (float32 rounding can only flip
// edges whose scores sit within ~1e-4 of the decision threshold).
func TestWithPrecisionF32TrackParity(t *testing.T) {
	r64, r32, test := parityFixture(t, t.TempDir(), Float32)
	if r32.Precision() != Float32 {
		t.Fatalf("precision %v", r32.Precision())
	}
	assertTrackParity(t, r64, r32, test, precisionBudget)
}

// TestWithPrecisionInt8TrackParity is the acceptance gate for the
// quantized serving path: int8 reconstruction, loaded from a v4
// checkpoint whose activation scales were calibrated on the training
// events, holds the same budget as f32.
func TestWithPrecisionInt8TrackParity(t *testing.T) {
	r64, r8, test := parityFixture(t, t.TempDir(), Int8)
	if r8.Precision() != Int8 {
		t.Fatalf("precision %v", r8.Precision())
	}
	assertTrackParity(t, r64, r8, test, precisionBudget)
}

// TestInt8CheckpointServesIdentically: a v4 quantized checkpoint loads
// into bitwise-identical int8 inference — the stored activation scales
// are adopted verbatim, and dequantizing the int8 weights and
// re-quantizing them at sync reproduces the exporter's quantized
// payload exactly (per-column max |q| is 127 by construction, so the
// re-derived scale is the stored scale).
func TestInt8CheckpointServesIdentically(t *testing.T) {
	dir := t.TempDir()
	_, r8, test := parityFixture(t, dir, Int8)
	ctx := context.Background()

	ckpt8 := filepath.Join(dir, "model.i8.ckpt.gz")
	if err := r8.SaveCheckpointInt8(ckpt8); err != nil {
		t.Fatal(err)
	}
	rFrom8, err := New(r8.Spec(), WithSeed(9), WithGNN(8, 2), WithPrecision(Int8))
	if err != nil {
		t.Fatal(err)
	}
	if err := rFrom8.LoadCheckpoint(ckpt8); err != nil {
		t.Fatal(err)
	}
	for i, ev := range test {
		a, err := r8.Reconstruct(ctx, ev)
		if err != nil {
			t.Fatal(err)
		}
		b, err := rFrom8.Reconstruct(ctx, ev)
		if err != nil {
			t.Fatal(err)
		}
		if a.Match != b.Match || a.EdgeCounts != b.EdgeCounts || len(a.Tracks) != len(b.Tracks) {
			t.Fatalf("event %d: v4-checkpoint serving differs from the exporting reconstructor", i)
		}
	}
}

// TestInt8CalibrateRecalibrates: the public Calibrate entry swaps the
// activation scales and rebuilds the snapshots without touching the
// weights — reconstruction keeps working on the new sample.
func TestInt8CalibrateRecalibrates(t *testing.T) {
	_, r8, test := parityFixture(t, t.TempDir(), Int8)
	if err := r8.Calibrate(context.Background(), test); err != nil {
		t.Fatal(err)
	}
	res, err := r8.Reconstruct(context.Background(), test[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tracks) == 0 {
		t.Fatal("post-recalibration reconstruction produced no tracks")
	}
}

// TestWithPrecisionF32TruthLevel exercises the truth-level builder
// combined with the f32 classifier (the serve smoke-test shape).
func TestWithPrecisionF32TruthLevel(t *testing.T) {
	spec := detector.Ex3Like(0.02)
	spec.NumEvents = 1
	ds := detector.Generate(spec, 7)
	r32, err := New(spec, WithSeed(3), WithGNN(8, 2), WithTruthLevelGraphs(1.0), WithThreshold(0), WithPrecision(Float32))
	if err != nil {
		t.Fatal(err)
	}
	res, err := r32.Reconstruct(context.Background(), ds.Events[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tracks) == 0 {
		t.Fatal("f32 truth-level reconstruction produced no tracks")
	}
}

// TestInt8TruthLevel: an untrained Int8 reconstructor (truth-level
// builder, threshold 0 — the serve smoke-test shape) constructs and
// runs, proving the synthetic-batch calibration fallback produces
// usable scales with no Fit and no checkpoint.
func TestInt8TruthLevel(t *testing.T) {
	spec := detector.Ex3Like(0.02)
	spec.NumEvents = 1
	ds := detector.Generate(spec, 7)
	r8, err := New(spec, WithSeed(3), WithGNN(8, 2), WithTruthLevelGraphs(1.0), WithThreshold(0), WithPrecision(Int8))
	if err != nil {
		t.Fatal(err)
	}
	res, err := r8.Reconstruct(context.Background(), ds.Events[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tracks) == 0 {
		t.Fatal("i8 truth-level reconstruction produced no tracks")
	}
}

// TestEngineInt8MatchesSerial: the engine contract — batch results
// bit-identical to serial at any worker count — holds for the int8
// kernels (int32 accumulation is exact, so there is no reduction-order
// freedom to lose).
func TestEngineInt8MatchesSerial(t *testing.T) {
	_, r8, test := parityFixture(t, t.TempDir(), Int8)
	ctx := context.Background()
	serial := make([]*Result, len(test))
	for i, ev := range test {
		res, err := r8.Reconstruct(ctx, ev)
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = res
	}
	for _, workers := range []int{1, 3, 7} {
		eng, err := NewEngine(r8, WithWorkers(workers))
		if err != nil {
			t.Fatal(err)
		}
		batch, err := eng.ReconstructBatch(ctx, test)
		if err != nil {
			t.Fatal(err)
		}
		for i := range test {
			if serial[i].Match != batch[i].Match || serial[i].EdgeCounts != batch[i].EdgeCounts {
				t.Fatalf("workers=%d event %d: engine i8 result differs from serial", workers, i)
			}
		}
	}
}

// TestEngineF32MatchesSerial: the engine contract — batch results
// bit-identical to serial — holds at reduced precision too.
func TestEngineF32MatchesSerial(t *testing.T) {
	_, r32, test := precisionFixture(t, t.TempDir(), Float32)
	ctx := context.Background()
	eng, err := NewEngine(r32, WithWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	batch, err := eng.ReconstructBatch(ctx, test)
	if err != nil {
		t.Fatal(err)
	}
	for i, ev := range test {
		serial, err := r32.Reconstruct(ctx, ev)
		if err != nil {
			t.Fatal(err)
		}
		if serial.Match.Efficiency() != batch[i].Match.Efficiency() || serial.EdgeCounts != batch[i].EdgeCounts {
			t.Fatalf("event %d: engine f32 result differs from serial", i)
		}
	}
}

// constEmbedder is a custom stage-1 whose output the builder must
// consume — it maps every hit onto a line so the radius graph it
// induces is unmistakably its own.
type constEmbedder struct{}

func (constEmbedder) Embed(ctx context.Context, a *Arena, ev *Event) (*Matrix, error) {
	emb := tensor.NewFrom(a, ev.NumHits(), 2)
	for i := 0; i < ev.NumHits(); i++ {
		emb.Set(i, 0, float64(i)*0.01)
	}
	return emb, ctx.Err()
}

// TestWithPrecisionF32KeepsCustomEmbedder guards the stage-override
// contract at reduced precision: a custom Embedder must feed the graph
// builder (via the embed thunk), not be silently replaced by the
// built-in f32 embedding.
func TestWithPrecisionF32KeepsCustomEmbedder(t *testing.T) {
	spec := detector.Ex3Like(0.02)
	spec.NumEvents = 1
	ds := detector.Generate(spec, 13)
	build := func(opts ...Option) (src []int) {
		t.Helper()
		r, err := New(spec, append([]Option{WithSeed(3), WithGNN(8, 2), WithEmbedder(constEmbedder{}), WithoutEdgeFilter()}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		eg, err := r.BuildGraph(context.Background(), ds.Events[0])
		if err != nil {
			t.Fatal(err)
		}
		return eg.G.Src
	}
	f64Src := build()
	for _, prec := range []Precision{Float32, Int8} {
		src := build(WithPrecision(prec))
		if len(f64Src) != len(src) {
			t.Fatalf("custom embedder graph differs at %s: %d vs %d edges — the %s builder ignored the custom embedding", prec, len(f64Src), len(src), prec)
		}
		for i := range f64Src {
			if f64Src[i] != src[i] {
				t.Fatalf("custom embedder graph differs at %s — the builder ignored the custom embedding", prec)
			}
		}
	}
}

// TestF32CheckpointServesIdentically: an f32-dtype (v3) checkpoint
// loaded into an f32 reconstructor scores identically to the f64
// checkpoint of the same model served at f32 — the load demotion and
// the sync demotion commute.
func TestF32CheckpointServesIdentically(t *testing.T) {
	dir := t.TempDir()
	r64, r32, test := precisionFixture(t, dir, Float32)
	ctx := context.Background()

	ckpt32 := filepath.Join(dir, "model.f32.ckpt.gz")
	if err := nn.SaveParamsFileDtype(ckpt32, r64.params(), nn.DtypeF32); err != nil {
		t.Fatal(err)
	}
	spec := r64.Spec()
	rFrom32, err := New(spec, WithSeed(9), WithGNN(8, 2), WithPrecision(Float32))
	if err != nil {
		t.Fatal(err)
	}
	if err := rFrom32.LoadCheckpoint(ckpt32); err != nil {
		t.Fatal(err)
	}
	for i, ev := range test {
		a, err := r32.Reconstruct(ctx, ev)
		if err != nil {
			t.Fatal(err)
		}
		b, err := rFrom32.Reconstruct(ctx, ev)
		if err != nil {
			t.Fatal(err)
		}
		if a.Match.Efficiency() != b.Match.Efficiency() || a.Match.FakeRate() != b.Match.FakeRate() ||
			len(a.Tracks) != len(b.Tracks) {
			t.Fatalf("event %d: f32-checkpoint serving differs from f64-checkpoint serving at f32", i)
		}
	}
}
