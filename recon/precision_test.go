package recon

import (
	"context"
	"math"
	"path/filepath"
	"testing"

	"repro/internal/detector"
	"repro/internal/nn"
	"repro/internal/tensor"
)

// precisionFixture builds a small trained f64 reconstructor plus an
// untrained twin at the requested precision, weight-synced through a
// checkpoint — the serve deployment shape (train once, load anywhere).
func precisionFixture(t *testing.T, dir string, prec Precision, opts ...Option) (*Reconstructor, *Reconstructor, []*Event) {
	t.Helper()
	spec := detector.Ex3Like(0.02)
	spec.NumEvents = 3
	ds := detector.Generate(spec, 5)
	train, test := ds.Events[:2], ds.Events[2:]

	base := append([]Option{WithSeed(9), WithGNN(8, 2)}, opts...)
	r64, err := New(spec, base...)
	if err != nil {
		t.Fatal(err)
	}
	if err := r64.Fit(context.Background(), train); err != nil {
		t.Fatal(err)
	}
	ckpt := filepath.Join(dir, "model.ckpt.gz")
	if err := r64.SaveCheckpoint(ckpt); err != nil {
		t.Fatal(err)
	}

	rp, err := New(spec, append(append([]Option{}, base...), WithPrecision(prec))...)
	if err != nil {
		t.Fatal(err)
	}
	if err := rp.LoadCheckpoint(ckpt); err != nil {
		t.Fatal(err)
	}
	return r64, rp, test
}

// TestWithPrecisionF64IsDefaultPath pins that WithPrecision(Float64)
// leaves the historical stages in place — results bitwise identical to
// an option-free reconstructor.
func TestWithPrecisionF64IsDefaultPath(t *testing.T) {
	r64, rp, test := precisionFixture(t, t.TempDir(), Float64)
	ctx := context.Background()
	for _, ev := range test {
		a, err := r64.Reconstruct(ctx, ev)
		if err != nil {
			t.Fatal(err)
		}
		b, err := rp.Reconstruct(ctx, ev)
		if err != nil {
			t.Fatal(err)
		}
		if a.Match.Efficiency() != b.Match.Efficiency() || a.EdgeCounts.Precision() != b.EdgeCounts.Precision() {
			t.Fatalf("Float64 precision changed results: eff %v vs %v, purity %v vs %v",
				a.Match.Efficiency(), b.Match.Efficiency(), a.EdgeCounts.Precision(), b.EdgeCounts.Precision())
		}
		if len(a.Tracks) != len(b.Tracks) {
			t.Fatalf("Float64 precision changed track count: %d vs %d", len(a.Tracks), len(b.Tracks))
		}
	}
}

// TestWithPrecisionF32TrackParity is the acceptance gate for the
// reduced-precision serving path: on the test events, float32
// reconstruction through all five stages reproduces the float64 track
// efficiency and purity within the documented tolerance (PERF.md:
// ±0.02 absolute — float32 rounding can only flip edges whose scores
// sit within ~1e-4 of the decision threshold).
func TestWithPrecisionF32TrackParity(t *testing.T) {
	const tol = 0.02
	r64, r32, test := precisionFixture(t, t.TempDir(), Float32)
	if r32.Precision() != Float32 {
		t.Fatalf("precision %v", r32.Precision())
	}
	ctx := context.Background()
	for i, ev := range test {
		a, err := r64.Reconstruct(ctx, ev)
		if err != nil {
			t.Fatal(err)
		}
		b, err := r32.Reconstruct(ctx, ev)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(a.Match.Efficiency()-b.Match.Efficiency()) > tol {
			t.Fatalf("event %d: f32 efficiency %v vs f64 %v (tol %v)",
				i, b.Match.Efficiency(), a.Match.Efficiency(), tol)
		}
		if math.Abs(a.EdgeCounts.Precision()-b.EdgeCounts.Precision()) > tol {
			t.Fatalf("event %d: f32 edge purity %v vs f64 %v (tol %v)",
				i, b.EdgeCounts.Precision(), a.EdgeCounts.Precision(), tol)
		}
	}
}

// TestWithPrecisionF32TruthLevel exercises the truth-level builder
// combined with the f32 classifier (the serve smoke-test shape).
func TestWithPrecisionF32TruthLevel(t *testing.T) {
	spec := detector.Ex3Like(0.02)
	spec.NumEvents = 1
	ds := detector.Generate(spec, 7)
	r32, err := New(spec, WithSeed(3), WithGNN(8, 2), WithTruthLevelGraphs(1.0), WithThreshold(0), WithPrecision(Float32))
	if err != nil {
		t.Fatal(err)
	}
	res, err := r32.Reconstruct(context.Background(), ds.Events[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tracks) == 0 {
		t.Fatal("f32 truth-level reconstruction produced no tracks")
	}
}

// TestEngineF32MatchesSerial: the engine contract — batch results
// bit-identical to serial — holds at reduced precision too.
func TestEngineF32MatchesSerial(t *testing.T) {
	_, r32, test := precisionFixture(t, t.TempDir(), Float32)
	ctx := context.Background()
	eng, err := NewEngine(r32, WithWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	batch, err := eng.ReconstructBatch(ctx, test)
	if err != nil {
		t.Fatal(err)
	}
	for i, ev := range test {
		serial, err := r32.Reconstruct(ctx, ev)
		if err != nil {
			t.Fatal(err)
		}
		if serial.Match.Efficiency() != batch[i].Match.Efficiency() || serial.EdgeCounts != batch[i].EdgeCounts {
			t.Fatalf("event %d: engine f32 result differs from serial", i)
		}
	}
}

// constEmbedder is a custom stage-1 whose output the builder must
// consume — it maps every hit onto a line so the radius graph it
// induces is unmistakably its own.
type constEmbedder struct{}

func (constEmbedder) Embed(ctx context.Context, a *Arena, ev *Event) (*Matrix, error) {
	emb := tensor.NewFrom(a, ev.NumHits(), 2)
	for i := 0; i < ev.NumHits(); i++ {
		emb.Set(i, 0, float64(i)*0.01)
	}
	return emb, ctx.Err()
}

// TestWithPrecisionF32KeepsCustomEmbedder guards the stage-override
// contract at reduced precision: a custom Embedder must feed the graph
// builder (via the embed thunk), not be silently replaced by the
// built-in f32 embedding.
func TestWithPrecisionF32KeepsCustomEmbedder(t *testing.T) {
	spec := detector.Ex3Like(0.02)
	spec.NumEvents = 1
	ds := detector.Generate(spec, 13)
	build := func(opts ...Option) (src []int) {
		t.Helper()
		r, err := New(spec, append([]Option{WithSeed(3), WithGNN(8, 2), WithEmbedder(constEmbedder{}), WithoutEdgeFilter()}, opts...)...)
		if err != nil {
			t.Fatal(err)
		}
		eg, err := r.BuildGraph(context.Background(), ds.Events[0])
		if err != nil {
			t.Fatal(err)
		}
		return eg.G.Src
	}
	f64Src := build()
	f32Src := build(WithPrecision(Float32))
	if len(f64Src) != len(f32Src) {
		t.Fatalf("custom embedder graph differs across precisions: %d vs %d edges — the f32 builder ignored the custom embedding", len(f64Src), len(f32Src))
	}
	for i := range f64Src {
		if f64Src[i] != f32Src[i] {
			t.Fatal("custom embedder graph differs across precisions — the f32 builder ignored the custom embedding")
		}
	}
}

// TestF32CheckpointServesIdentically: an f32-dtype (v3) checkpoint
// loaded into an f32 reconstructor scores identically to the f64
// checkpoint of the same model served at f32 — the load demotion and
// the sync demotion commute.
func TestF32CheckpointServesIdentically(t *testing.T) {
	dir := t.TempDir()
	r64, r32, test := precisionFixture(t, dir, Float32)
	ctx := context.Background()

	ckpt32 := filepath.Join(dir, "model.f32.ckpt.gz")
	if err := nn.SaveParamsFileDtype(ckpt32, r64.params(), nn.DtypeF32); err != nil {
		t.Fatal(err)
	}
	spec := r64.Spec()
	rFrom32, err := New(spec, WithSeed(9), WithGNN(8, 2), WithPrecision(Float32))
	if err != nil {
		t.Fatal(err)
	}
	if err := rFrom32.LoadCheckpoint(ckpt32); err != nil {
		t.Fatal(err)
	}
	for i, ev := range test {
		a, err := r32.Reconstruct(ctx, ev)
		if err != nil {
			t.Fatal(err)
		}
		b, err := rFrom32.Reconstruct(ctx, ev)
		if err != nil {
			t.Fatal(err)
		}
		if a.Match.Efficiency() != b.Match.Efficiency() || a.Match.FakeRate() != b.Match.FakeRate() ||
			len(a.Tracks) != len(b.Tracks) {
			t.Fatalf("event %d: f32-checkpoint serving differs from f64-checkpoint serving at f32", i)
		}
	}
}
