package recon_test

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"

	"repro/recon"
	"repro/recon/wire"
)

// PR 8 HTTP surface tests: binary wire negotiation on server and
// gateway, and the Retry-After propagation regression.

// postBinary posts a binary-encoded reconstruct request with the given
// Accept header ("" to omit).
func postBinary(t *testing.T, h http.Handler, req recon.ReconstructRequest, accept string) *httptest.ResponseRecorder {
	t.Helper()
	blob, err := wire.AppendRequest(nil, &req)
	if err != nil {
		t.Fatal(err)
	}
	r := httptest.NewRequest("POST", "/v1/reconstruct", bytes.NewReader(blob))
	r.Header.Set("Content-Type", wire.ContentTypeBinary)
	if accept != "" {
		r.Header.Set("Accept", accept)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	return w
}

func syntheticRequest() recon.ReconstructRequest {
	return recon.ReconstructRequest{Synthetic: &recon.SyntheticJSON{Count: 2, Seed: 7}}
}

// TestServerBinaryNegotiation: the four content negotiation quadrants
// against one server, with all paths producing identical results.
func TestServerBinaryNegotiation(t *testing.T) {
	srv, _ := testServer(t)
	req := syntheticRequest()

	// JSON in, JSON out — the pre-PR 8 behavior, untouched.
	var jsonResp recon.ReconstructResponse
	w := postJSON(t, srv, "/v1/reconstruct", req)
	if w.Code != http.StatusOK {
		t.Fatalf("json/json status %d: %s", w.Code, w.Body.String())
	}
	if err := json.Unmarshal(w.Body.Bytes(), &jsonResp); err != nil {
		t.Fatal(err)
	}

	// Binary in, binary out (Accept absent mirrors the request encoding).
	w = postBinary(t, srv, req, "")
	if w.Code != http.StatusOK {
		t.Fatalf("bin/bin status %d: %s", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); ct != wire.ContentTypeBinary {
		t.Fatalf("bin/bin Content-Type = %q", ct)
	}
	binResp, err := wire.DecodeResponse(w.Body.Bytes())
	if err != nil {
		t.Fatalf("decode binary response: %v", err)
	}
	if !reflect.DeepEqual(binResp.Results, jsonResp.Results) {
		t.Fatal("binary path results diverge from JSON path")
	}

	// Binary in, JSON out via Accept.
	w = postBinary(t, srv, req, wire.ContentTypeJSON)
	if w.Code != http.StatusOK {
		t.Fatalf("bin/json status %d: %s", w.Code, w.Body.String())
	}
	var crossResp recon.ReconstructResponse
	if err := json.Unmarshal(w.Body.Bytes(), &crossResp); err != nil {
		t.Fatalf("bin/json response is not JSON: %v", err)
	}
	if !reflect.DeepEqual(crossResp.Results, jsonResp.Results) {
		t.Fatal("bin/json results diverge")
	}

	// JSON in, binary out via Accept.
	blob, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	r := httptest.NewRequest("POST", "/v1/reconstruct", bytes.NewReader(blob))
	r.Header.Set("Content-Type", "application/json")
	r.Header.Set("Accept", wire.ContentTypeBinary)
	rec := httptest.NewRecorder()
	srv.ServeHTTP(rec, r)
	if rec.Code != http.StatusOK {
		t.Fatalf("json/bin status %d: %s", rec.Code, rec.Body.String())
	}
	if _, err := wire.DecodeResponse(rec.Body.Bytes()); err != nil {
		t.Fatalf("json/bin response is not valid binary: %v", err)
	}

	// Unknown Content-Type still 415s.
	r = httptest.NewRequest("POST", "/v1/reconstruct", bytes.NewReader(blob))
	r.Header.Set("Content-Type", "text/plain")
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, r)
	if rec.Code != http.StatusUnsupportedMediaType {
		t.Fatalf("text/plain status = %d, want 415", rec.Code)
	}

	// A corrupt binary body is a clean 400, not a 500.
	r = httptest.NewRequest("POST", "/v1/reconstruct", bytes.NewReader([]byte{1, 2, 3}))
	r.Header.Set("Content-Type", wire.ContentTypeBinary)
	rec = httptest.NewRecorder()
	srv.ServeHTTP(rec, r)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("corrupt binary status = %d, want 400", rec.Code)
	}
}

// TestGatewayBinaryNegotiation: the gateway accepts and answers the
// binary encoding and proxies shard traffic in it, with results
// bit-identical to the JSON path through the same fleet.
func TestGatewayBinaryNegotiation(t *testing.T) {
	gw, _ := shardFleet(t, 2)
	req := syntheticRequest()

	var jsonResp recon.ReconstructResponse
	w := postJSON(t, gw, "/v1/reconstruct", req)
	if w.Code != http.StatusOK {
		t.Fatalf("json status %d: %s", w.Code, w.Body.String())
	}
	if err := json.Unmarshal(w.Body.Bytes(), &jsonResp); err != nil {
		t.Fatal(err)
	}

	w = postBinary(t, gw, req, "")
	if w.Code != http.StatusOK {
		t.Fatalf("binary status %d: %s", w.Code, w.Body.String())
	}
	if ct := w.Header().Get("Content-Type"); ct != wire.ContentTypeBinary {
		t.Fatalf("binary Content-Type = %q", ct)
	}
	binResp, err := wire.DecodeResponse(w.Body.Bytes())
	if err != nil {
		t.Fatalf("decode binary gateway response: %v", err)
	}
	if !reflect.DeepEqual(binResp.Results, jsonResp.Results) {
		t.Fatal("gateway binary results diverge from JSON results")
	}
}

// TestGatewayRetryAfterPropagation is the PR 8 satellite regression: a
// shard's own Retry-After hint must survive the proxy instead of being
// overwritten with the hardcoded "1".
func TestGatewayRetryAfterPropagation(t *testing.T) {
	for _, tc := range []struct {
		name     string
		upstream string // Retry-After the fake shard sends ("" = none)
		want     string // Retry-After the gateway must answer with
	}{
		{"propagates upstream hint", "7", "7"},
		{"falls back to 1s without hint", "", "1"},
	} {
		t.Run(tc.name, func(t *testing.T) {
			shard := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
				if tc.upstream != "" {
					w.Header().Set("Retry-After", tc.upstream)
				}
				w.Header().Set("Content-Type", "application/json")
				w.WriteHeader(http.StatusTooManyRequests)
				_, _ = w.Write([]byte(`{"error":"engine overloaded"}`))
			}))
			t.Cleanup(shard.Close)
			gw, err := recon.NewShardGateway([]string{shard.URL})
			if err != nil {
				t.Fatal(err)
			}
			w := postJSON(t, gw, "/v1/reconstruct", syntheticRequest())
			if w.Code != http.StatusTooManyRequests {
				t.Fatalf("status %d, want 429: %s", w.Code, w.Body.String())
			}
			if got := w.Header().Get("Retry-After"); got != tc.want {
				t.Fatalf("Retry-After = %q, want %q", got, tc.want)
			}
		})
	}
}
