package wire

import (
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"

	"repro/internal/transport"
)

// testRequest builds a request exercising every field, including float
// bit patterns JSON cannot round-trip (negative zero, subnormals).
func testRequest() *Request {
	return &Request{
		Events: []Event{
			{
				Hits: []Hit{
					{X: 1.5, Y: -2.25, Z: 3.125, R: 2.704163456597992, Phi: -0.982793723247329, Layer: 0, Particle: 7},
					{X: math.Copysign(0, -1), Y: math.SmallestNonzeroFloat64, Z: -1e308, R: 0, Phi: 0, Layer: 9, Particle: -1},
				},
				Features: [][]float64{{0.1, 0.2, 0.3}, {-0.4, 0.5, -0.6}},
				TruthSrc: []int{0},
				TruthDst: []int{1},
			},
			{
				Hits:     make([]Hit, 0),
				Features: make([][]float64, 0),
			},
		},
		Synthetic: &Synthetic{Count: 3, Seed: 0xDEADBEEFCAFE},
	}
}

func testResponse() *Response {
	return &Response{
		Results: []TrackResult{
			{
				NumTracks:       2,
				Tracks:          [][]int{{0, 1, 2}, {3}},
				EdgePrecision:   0.875,
				EdgeRecall:      1,
				TrackEfficiency: 0.5,
				FakeRate:        math.Copysign(0, -1),
			},
			{
				NumTracks: 0,
				Tracks:    make([][]int, 0),
				Error:     "stage \"segment\" panicked",
			},
		},
		Elapsed: 12.75,
	}
}

func TestRequestRoundTrip(t *testing.T) {
	want := testRequest()
	buf, err := AppendRequest(nil, want)
	if err != nil {
		t.Fatalf("AppendRequest: %v", err)
	}
	got, err := DecodeRequest(buf)
	if err != nil {
		t.Fatalf("DecodeRequest: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	// Re-encoding the decoded form must be byte-identical: the format has
	// exactly one encoding per message.
	buf2, err := AppendRequest(nil, got)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if string(buf2) != string(buf) {
		t.Fatal("re-encoded request differs from original bytes")
	}
}

func TestRequestRoundTripNoEvents(t *testing.T) {
	want := &Request{Synthetic: &Synthetic{Count: 1, Seed: 42}}
	buf, err := AppendRequest(nil, want)
	if err != nil {
		t.Fatalf("AppendRequest: %v", err)
	}
	got, err := DecodeRequest(buf)
	if err != nil {
		t.Fatalf("DecodeRequest: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch: got %+v want %+v", got, want)
	}
}

func TestResponseRoundTrip(t *testing.T) {
	want := testResponse()
	buf, err := AppendResponse(nil, want)
	if err != nil {
		t.Fatalf("AppendResponse: %v", err)
	}
	got, err := DecodeResponse(buf)
	if err != nil {
		t.Fatalf("DecodeResponse: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	buf2, err := AppendResponse(nil, got)
	if err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if string(buf2) != string(buf) {
		t.Fatal("re-encoded response differs from original bytes")
	}
}

func TestAppendRequestRejectsMalformedEvents(t *testing.T) {
	cases := []struct {
		name string
		req  *Request
	}{
		{"feature rows != hits", &Request{Events: []Event{{
			Hits: []Hit{{}}, Features: nil,
		}}}},
		{"ragged feature row", &Request{Events: []Event{{
			Hits: []Hit{{}, {}}, Features: [][]float64{{1, 2}, {3}},
		}}}},
		{"truth length mismatch", &Request{Events: []Event{{
			Hits: []Hit{{}}, Features: [][]float64{{1}}, TruthSrc: []int{0}, TruthDst: nil,
		}}}},
		{"negative truth index", &Request{Events: []Event{{
			Hits: []Hit{{}}, Features: [][]float64{{1}}, TruthSrc: []int{-1}, TruthDst: []int{0},
		}}}},
		{"negative synthetic count", &Request{Synthetic: &Synthetic{Count: -1}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := AppendRequest(nil, tc.req); !errors.Is(err, ErrBadMessage) {
				t.Fatalf("err = %v, want ErrBadMessage", err)
			}
		})
	}
}

func TestDecodeRequestRejectsCorruption(t *testing.T) {
	valid, err := AppendRequest(nil, testRequest())
	if err != nil {
		t.Fatal(err)
	}
	corrupt := func(mutate func([]byte) []byte) []byte {
		buf := append([]byte(nil), valid...)
		return mutate(buf)
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad magic", corrupt(func(b []byte) []byte { b[0] ^= 0xFF; return b })},
		{"response magic", func() []byte {
			b, _ := AppendResponse(nil, testResponse())
			return b
		}()},
		{"truncated mid-frame", valid[:len(valid)/2]},
		{"trailing bytes", corrupt(func(b []byte) []byte { return append(b, 0) })},
		{"event count beyond buffer", corrupt(func(b []byte) []byte {
			b[4], b[5], b[6], b[7] = 0x00, 0xFF, 0xFF, 0xFF
			return b
		})},
		{"bad synthetic flag", corrupt(func(b []byte) []byte {
			// The synthetic flag is 13 bytes from the end (u8 + u32 + u64).
			b[len(b)-13] = 2
			return b
		})},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeRequest(tc.data); !errors.Is(err, ErrBadMessage) {
				t.Fatalf("err = %v, want ErrBadMessage", err)
			}
		})
	}
}

func TestDecodeRequestRejectsHostileCounts(t *testing.T) {
	// A message declaring a huge hit count inside a tiny frame must fail
	// on the size check, not attempt the allocation.
	payload := appendU32(nil, 0xFFFFFF) // numHits way beyond frame size
	payload = appendU32(payload, 3)     // featWidth
	framed, err := transport.AppendFrame(nil, payload, maxFrameBytes)
	if err != nil {
		t.Fatal(err)
	}
	msg := appendU32(nil, requestMagic)
	msg = appendU32(msg, 1)
	msg = append(msg, framed...)
	msg = append(msg, 0)
	_, derr := DecodeRequest(msg)
	if !errors.Is(derr, ErrBadMessage) {
		t.Fatalf("err = %v, want ErrBadMessage", derr)
	}
	if !strings.Contains(derr.Error(), "event 0") {
		t.Fatalf("error should locate the bad event: %v", derr)
	}
}

func TestDecodeResponseRejectsCorruption(t *testing.T) {
	valid, err := AppendResponse(nil, testResponse())
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"request magic", func() []byte {
			b, _ := AppendRequest(nil, testRequest())
			return b
		}()},
		{"truncated elapsed", valid[:len(valid)-4]},
		{"trailing bytes", append(append([]byte(nil), valid...), 0xAA)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := DecodeResponse(tc.data); !errors.Is(err, ErrBadMessage) {
				t.Fatalf("err = %v, want ErrBadMessage", err)
			}
		})
	}
}

func TestBinaryPreservesFloatBits(t *testing.T) {
	// The whole point of the binary encoding: exact bit patterns survive,
	// including ones JSON floats mangle or reject.
	values := []float64{
		math.Copysign(0, -1),
		math.SmallestNonzeroFloat64,
		math.MaxFloat64,
		0.1, // not exactly representable in decimal
	}
	for _, v := range values {
		req := &Request{Events: []Event{{
			Hits:     []Hit{{X: v, Y: v, Z: v, R: v, Phi: v}},
			Features: [][]float64{{v}},
		}}}
		buf, err := AppendRequest(nil, req)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeRequest(buf)
		if err != nil {
			t.Fatal(err)
		}
		h := got.Events[0].Hits[0]
		for name, g := range map[string]float64{"x": h.X, "y": h.Y, "z": h.Z, "r": h.R, "phi": h.Phi, "feat": got.Events[0].Features[0][0]} {
			if math.Float64bits(g) != math.Float64bits(v) {
				t.Fatalf("%s: bits %016x, want %016x", name, math.Float64bits(g), math.Float64bits(v))
			}
		}
	}
}
