package wire

import (
	"testing"
)

// FuzzDecodeRequest is the decode fuzz target for the binary request
// format: arbitrary bytes must never panic or over-allocate, and any
// input that decodes successfully must re-encode to the same bytes and
// re-decode to the same value (one canonical encoding per message).
func FuzzDecodeRequest(f *testing.F) {
	seed := func(req *Request) {
		buf, err := AppendRequest(nil, req)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	seed(&Request{})
	seed(testRequest())
	seed(&Request{Synthetic: &Synthetic{Count: 1, Seed: 1}})
	seed(&Request{Events: []Event{{Hits: make([]Hit, 0), Features: make([][]float64, 0)}}})
	// Corrupt variants: bad magic, truncation, trailing garbage.
	valid, _ := AppendRequest(nil, testRequest())
	f.Add([]byte{})
	f.Add(valid[:4])
	f.Add(valid[:len(valid)-1])
	f.Add(append(append([]byte(nil), valid...), 0))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeRequest(data)
		if err != nil {
			return
		}
		buf, err := AppendRequest(nil, req)
		if err != nil {
			t.Fatalf("decoded request fails to re-encode: %v", err)
		}
		if string(buf) != string(data) {
			t.Fatalf("re-encode differs: got %d bytes, input %d bytes", len(buf), len(data))
		}
		// Equality via re-encoded bytes, not DeepEqual: the payload may
		// carry NaNs, whose bit patterns the wire preserves but DeepEqual
		// refuses to call equal.
		again, err := DecodeRequest(buf)
		if err != nil {
			t.Fatalf("re-decode: %v", err)
		}
		buf2, err := AppendRequest(nil, again)
		if err != nil {
			t.Fatalf("re-decode re-encode: %v", err)
		}
		if string(buf2) != string(buf) {
			t.Fatal("re-decode changes the message")
		}
	})
}

// FuzzDecodeResponse mirrors FuzzDecodeRequest for the response side,
// which the gateway decodes from shard replies.
func FuzzDecodeResponse(f *testing.F) {
	seed := func(resp *Response) {
		buf, err := AppendResponse(nil, resp)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf)
	}
	seed(&Response{})
	seed(testResponse())
	valid, _ := AppendResponse(nil, testResponse())
	f.Add([]byte{})
	f.Add(valid[:len(valid)-1])
	f.Add(append(append([]byte(nil), valid...), 0))

	f.Fuzz(func(t *testing.T, data []byte) {
		resp, err := DecodeResponse(data)
		if err != nil {
			return
		}
		buf, err := AppendResponse(nil, resp)
		if err != nil {
			t.Fatalf("decoded response fails to re-encode: %v", err)
		}
		if string(buf) != string(data) {
			t.Fatalf("re-encode differs: got %d bytes, input %d bytes", len(buf), len(data))
		}
	})
}
