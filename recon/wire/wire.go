// Package wire defines the /v1/reconstruct wire surface shared by
// recon.Server, recon.ShardGateway, and their clients (cmd/loadgen):
// the JSON DTOs and a compact binary encoding of the same messages.
//
// JSON is the readable default; the binary format exists because hit
// payloads are overwhelmingly float arrays, and at millions-of-users
// traffic JSON float parsing dominates request cost. The binary layout
// reuses the length-prefixed framing conventions of internal/transport
// (4-byte big-endian length headers, a 64 MiB per-frame cap so four
// bytes of hostile input can never demand a gigabyte allocation):
//
//	request  := magic "RBQ1" | u32 eventCount | eventCount event frames
//	            | u8 hasSynthetic | [u32 count | u64 seed]
//	event    := frame( u32 numHits | u32 featWidth
//	            | numHits × (f64 x,y,z,r,phi | i32 layer | i32 particle)
//	            | numHits·featWidth × f64 feature
//	            | u32 truthCount | truthCount × (u32 src | u32 dst) )
//	response := magic "RBS1" | u32 resultCount | resultCount result frames
//	            | f64 elapsedMs
//	result   := frame( u32 numTracks | numTracks × (u32 n | n × u32 hit)
//	            | f64 edgePrecision | f64 edgeRecall
//	            | f64 trackEfficiency | f64 fakeRate
//	            | u32 errLen | errLen bytes )
//
// All integers are big-endian; floats are IEEE-754 bit patterns via
// math.Float64bits, so a decode-encode round trip is byte-identical and
// float payloads cross the wire bit-exact (JSON cannot promise either).
// Every frame's interior is validated against its exact expected size
// before any allocation proportional to a declared count.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/transport"
)

// ContentTypeBinary is the negotiated media type of the binary encoding.
const ContentTypeBinary = "application/x-recon-bin"

// ContentTypeJSON is the default media type of the JSON encoding.
const ContentTypeJSON = "application/json"

const (
	requestMagic  = 0x52425131 // "RBQ1"
	responseMagic = 0x52425331 // "RBS1"

	// maxFrameBytes caps each event or result frame, reusing the
	// transport default so one corrupt length header cannot demand an
	// allocation-of-death.
	maxFrameBytes = transport.DefaultMaxFrameBytes

	// maxCount bounds any declared collection size before its frames are
	// even looked at (each event costs at least one frame header, so a
	// count beyond the remaining bytes is provably corrupt anyway).
	maxCount = 1 << 24
)

// ErrBadMessage reports a structurally invalid binary message.
var ErrBadMessage = errors.New("wire: malformed binary message")

// Hit is one detector hit on the wire. R and Phi are optional in JSON;
// when both are zero the server derives them from X and Y (sending them
// preserves bit-exact cylindrical coordinates across the roundtrip; the
// binary encoding always carries them).
type Hit struct {
	X        float64 `json:"x"`
	Y        float64 `json:"y"`
	Z        float64 `json:"z"`
	R        float64 `json:"r,omitempty"`
	Phi      float64 `json:"phi,omitempty"`
	Layer    int     `json:"layer"`
	Particle int     `json:"particle"` // -1 for noise / unknown
}

// Event is one collision event on the wire. Truth edges are optional;
// without them the response's quality metrics are zero.
type Event struct {
	Hits     []Hit       `json:"hits"`
	Features [][]float64 `json:"features"`
	TruthSrc []int       `json:"truth_src,omitempty"`
	TruthDst []int       `json:"truth_dst,omitempty"`
}

// Synthetic asks the server to generate events from its configured
// detector spec instead of shipping them over the wire — handy for
// smoke tests and load generation.
type Synthetic struct {
	Count int    `json:"count"`
	Seed  uint64 `json:"seed"`
}

// Request is the POST /v1/reconstruct body: explicit events, synthetic
// events, or both (synthetic are appended).
type Request struct {
	Events    []Event    `json:"events,omitempty"`
	Synthetic *Synthetic `json:"synthetic,omitempty"`
}

// TrackResult is one event's reconstruction on the wire.
type TrackResult struct {
	NumTracks       int     `json:"num_tracks"`
	Tracks          [][]int `json:"tracks"`
	EdgePrecision   float64 `json:"edge_precision"`
	EdgeRecall      float64 `json:"edge_recall"`
	TrackEfficiency float64 `json:"track_efficiency"`
	FakeRate        float64 `json:"fake_rate"`
	Error           string  `json:"error,omitempty"`
}

// Response is the POST /v1/reconstruct reply.
type Response struct {
	Results []TrackResult `json:"results"`
	Elapsed float64       `json:"elapsed_ms"`
}

// hitBytes is one encoded Hit: five f64 coordinates plus two i32 tags.
const hitBytes = 5*8 + 2*4

// appendU32/appendU64/appendF64 are the primitive emitters; everything
// is big-endian to match the transport framing.
func appendU32(dst []byte, v uint32) []byte {
	return binary.BigEndian.AppendUint32(dst, v)
}

func appendU64(dst []byte, v uint64) []byte {
	return binary.BigEndian.AppendUint64(dst, v)
}

func appendF64(dst []byte, v float64) []byte {
	return binary.BigEndian.AppendUint64(dst, math.Float64bits(v))
}

// AppendRequest appends the binary encoding of req to dst and returns
// the extended slice. It fails only when a single event's frame would
// exceed the 64 MiB frame cap or a count field overflows its u32.
func AppendRequest(dst []byte, req *Request) ([]byte, error) {
	if len(req.Events) > maxCount {
		return dst, fmt.Errorf("%w: %d events", ErrBadMessage, len(req.Events))
	}
	dst = appendU32(dst, requestMagic)
	dst = appendU32(dst, uint32(len(req.Events)))
	var scratch []byte
	for i := range req.Events {
		var err error
		scratch, err = appendEventPayload(scratch[:0], &req.Events[i])
		if err != nil {
			return dst, fmt.Errorf("event %d: %w", i, err)
		}
		dst, err = transport.AppendFrame(dst, scratch, maxFrameBytes)
		if err != nil {
			return dst, fmt.Errorf("event %d: %w", i, err)
		}
	}
	if req.Synthetic == nil {
		return append(dst, 0), nil
	}
	dst = append(dst, 1)
	if req.Synthetic.Count < 0 || req.Synthetic.Count > maxCount {
		return dst, fmt.Errorf("%w: synthetic count %d", ErrBadMessage, req.Synthetic.Count)
	}
	dst = appendU32(dst, uint32(req.Synthetic.Count))
	dst = appendU64(dst, req.Synthetic.Seed)
	return dst, nil
}

func appendEventPayload(dst []byte, ev *Event) ([]byte, error) {
	n := len(ev.Hits)
	if len(ev.Features) != n {
		return dst, fmt.Errorf("%w: %d feature rows for %d hits", ErrBadMessage, len(ev.Features), n)
	}
	width := 0
	if n > 0 {
		width = len(ev.Features[0])
	}
	dst = appendU32(dst, uint32(n))
	dst = appendU32(dst, uint32(width))
	for _, h := range ev.Hits {
		dst = appendF64(dst, h.X)
		dst = appendF64(dst, h.Y)
		dst = appendF64(dst, h.Z)
		dst = appendF64(dst, h.R)
		dst = appendF64(dst, h.Phi)
		dst = appendU32(dst, uint32(int32(h.Layer)))
		dst = appendU32(dst, uint32(int32(h.Particle)))
	}
	for i, row := range ev.Features {
		if len(row) != width {
			return dst, fmt.Errorf("%w: ragged feature row %d (%d, want %d)", ErrBadMessage, i, len(row), width)
		}
		for _, v := range row {
			dst = appendF64(dst, v)
		}
	}
	if len(ev.TruthSrc) != len(ev.TruthDst) {
		return dst, fmt.Errorf("%w: truth_src/truth_dst length mismatch", ErrBadMessage)
	}
	dst = appendU32(dst, uint32(len(ev.TruthSrc)))
	for k := range ev.TruthSrc {
		if ev.TruthSrc[k] < 0 || ev.TruthDst[k] < 0 {
			return dst, fmt.Errorf("%w: negative truth edge index", ErrBadMessage)
		}
		dst = appendU32(dst, uint32(ev.TruthSrc[k]))
		dst = appendU32(dst, uint32(ev.TruthDst[k]))
	}
	return dst, nil
}

// AppendResponse appends the binary encoding of resp to dst.
func AppendResponse(dst []byte, resp *Response) ([]byte, error) {
	if len(resp.Results) > maxCount {
		return dst, fmt.Errorf("%w: %d results", ErrBadMessage, len(resp.Results))
	}
	dst = appendU32(dst, responseMagic)
	dst = appendU32(dst, uint32(len(resp.Results)))
	var scratch []byte
	for i := range resp.Results {
		var err error
		scratch, err = appendResultPayload(scratch[:0], &resp.Results[i])
		if err != nil {
			return dst, fmt.Errorf("result %d: %w", i, err)
		}
		dst, err = transport.AppendFrame(dst, scratch, maxFrameBytes)
		if err != nil {
			return dst, fmt.Errorf("result %d: %w", i, err)
		}
	}
	return appendF64(dst, resp.Elapsed), nil
}

func appendResultPayload(dst []byte, tr *TrackResult) ([]byte, error) {
	if len(tr.Tracks) > maxCount {
		return dst, fmt.Errorf("%w: %d tracks", ErrBadMessage, len(tr.Tracks))
	}
	dst = appendU32(dst, uint32(len(tr.Tracks)))
	for _, track := range tr.Tracks {
		dst = appendU32(dst, uint32(len(track)))
		for _, hit := range track {
			if hit < 0 {
				return dst, fmt.Errorf("%w: negative hit index", ErrBadMessage)
			}
			dst = appendU32(dst, uint32(hit))
		}
	}
	dst = appendF64(dst, tr.EdgePrecision)
	dst = appendF64(dst, tr.EdgeRecall)
	dst = appendF64(dst, tr.TrackEfficiency)
	dst = appendF64(dst, tr.FakeRate)
	dst = appendU32(dst, uint32(len(tr.Error)))
	return append(dst, tr.Error...), nil
}

// reader is a bounds-checked big-endian cursor over one buffer.
type reader struct {
	buf []byte
	off int
}

func (r *reader) remaining() int { return len(r.buf) - r.off }

func (r *reader) u32() (uint32, error) {
	if r.remaining() < 4 {
		return 0, fmt.Errorf("%w: truncated u32", ErrBadMessage)
	}
	v := binary.BigEndian.Uint32(r.buf[r.off:])
	r.off += 4
	return v, nil
}

func (r *reader) u64() (uint64, error) {
	if r.remaining() < 8 {
		return 0, fmt.Errorf("%w: truncated u64", ErrBadMessage)
	}
	v := binary.BigEndian.Uint64(r.buf[r.off:])
	r.off += 8
	return v, nil
}

func (r *reader) f64() (float64, error) {
	v, err := r.u64()
	return math.Float64frombits(v), err
}

func (r *reader) byte() (byte, error) {
	if r.remaining() < 1 {
		return 0, fmt.Errorf("%w: truncated byte", ErrBadMessage)
	}
	b := r.buf[r.off]
	r.off++
	return b, nil
}

// frame consumes one length-prefixed frame via the transport decoder.
func (r *reader) frame() ([]byte, error) {
	payload, rest, err := transport.DecodeFrame(r.buf[r.off:], maxFrameBytes)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadMessage, err)
	}
	r.off = len(r.buf) - len(rest)
	return payload, nil
}

// count validates a declared collection size against what the buffer
// could possibly hold (minBytes per element) before anything allocates.
func (r *reader) count(n uint32, minBytes int) (int, error) {
	if n > maxCount || int(n)*minBytes > r.remaining() {
		return 0, fmt.Errorf("%w: count %d exceeds remaining %d bytes", ErrBadMessage, n, r.remaining())
	}
	return int(n), nil
}

// DecodeRequest decodes one binary request. The input must contain
// exactly one message — trailing bytes are an error, so a truncated or
// concatenated body never silently half-parses.
func DecodeRequest(data []byte) (*Request, error) {
	r := &reader{buf: data}
	magic, err := r.u32()
	if err != nil {
		return nil, err
	}
	if magic != requestMagic {
		return nil, fmt.Errorf("%w: bad request magic %08x", ErrBadMessage, magic)
	}
	rawCount, err := r.u32()
	if err != nil {
		return nil, err
	}
	count, err := r.count(rawCount, transport.FrameHeaderBytes)
	if err != nil {
		return nil, err
	}
	req := &Request{}
	if count > 0 {
		req.Events = make([]Event, count)
	}
	for i := 0; i < count; i++ {
		payload, err := r.frame()
		if err != nil {
			return nil, fmt.Errorf("event %d: %w", i, err)
		}
		if err := decodeEventPayload(payload, &req.Events[i]); err != nil {
			return nil, fmt.Errorf("event %d: %w", i, err)
		}
	}
	hasSynth, err := r.byte()
	if err != nil {
		return nil, err
	}
	switch hasSynth {
	case 0:
	case 1:
		cnt, err := r.u32()
		if err != nil {
			return nil, err
		}
		if cnt > maxCount {
			return nil, fmt.Errorf("%w: synthetic count %d", ErrBadMessage, cnt)
		}
		seed, err := r.u64()
		if err != nil {
			return nil, err
		}
		req.Synthetic = &Synthetic{Count: int(cnt), Seed: seed}
	default:
		return nil, fmt.Errorf("%w: synthetic flag %d", ErrBadMessage, hasSynth)
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadMessage, r.remaining())
	}
	return req, nil
}

func decodeEventPayload(payload []byte, ev *Event) error {
	r := &reader{buf: payload}
	rawHits, err := r.u32()
	if err != nil {
		return err
	}
	numHits, err := r.count(rawHits, hitBytes)
	if err != nil {
		return err
	}
	rawWidth, err := r.u32()
	if err != nil {
		return err
	}
	// width must be zero for a hitless event — the encoder never emits
	// anything else, and insisting keeps the encoding canonical (exactly
	// one byte sequence per message).
	if rawWidth > maxCount || (numHits == 0 && rawWidth != 0) {
		return fmt.Errorf("%w: feature width %d", ErrBadMessage, rawWidth)
	}
	width := int(rawWidth)
	// The frame interior has an exactly computable size; insist on it so
	// corrupt counts fail before any proportional allocation.
	need := numHits*hitBytes + numHits*width*8 + 4
	if r.remaining() < need {
		return fmt.Errorf("%w: event needs %d bytes, frame holds %d", ErrBadMessage, need, r.remaining())
	}
	ev.Hits = make([]Hit, numHits)
	for i := range ev.Hits {
		h := &ev.Hits[i]
		h.X, _ = r.f64()
		h.Y, _ = r.f64()
		h.Z, _ = r.f64()
		h.R, _ = r.f64()
		var layer, particle uint32
		h.Phi, _ = r.f64()
		layer, _ = r.u32()
		particle, err = r.u32()
		if err != nil {
			return err
		}
		h.Layer = int(int32(layer))
		h.Particle = int(int32(particle))
	}
	ev.Features = make([][]float64, numHits)
	flat := make([]float64, numHits*width)
	for i := range ev.Features {
		row := flat[i*width : (i+1)*width : (i+1)*width]
		for j := range row {
			row[j], err = r.f64()
		}
		ev.Features[i] = row
	}
	if err != nil {
		return err
	}
	rawTruth, err := r.u32()
	if err != nil {
		return err
	}
	truth, err := r.count(rawTruth, 8)
	if err != nil {
		return err
	}
	if truth > 0 {
		ev.TruthSrc = make([]int, truth)
		ev.TruthDst = make([]int, truth)
	}
	for k := 0; k < truth; k++ {
		src, _ := r.u32()
		dst, err := r.u32()
		if err != nil {
			return err
		}
		ev.TruthSrc[k] = int(src)
		ev.TruthDst[k] = int(dst)
	}
	if r.remaining() != 0 {
		return fmt.Errorf("%w: %d trailing bytes in event frame", ErrBadMessage, r.remaining())
	}
	return nil
}

// DecodeResponse decodes one binary response. Like DecodeRequest, the
// input must contain exactly one message.
func DecodeResponse(data []byte) (*Response, error) {
	r := &reader{buf: data}
	magic, err := r.u32()
	if err != nil {
		return nil, err
	}
	if magic != responseMagic {
		return nil, fmt.Errorf("%w: bad response magic %08x", ErrBadMessage, magic)
	}
	rawCount, err := r.u32()
	if err != nil {
		return nil, err
	}
	count, err := r.count(rawCount, transport.FrameHeaderBytes)
	if err != nil {
		return nil, err
	}
	resp := &Response{}
	if count > 0 {
		resp.Results = make([]TrackResult, count)
	}
	for i := 0; i < count; i++ {
		payload, err := r.frame()
		if err != nil {
			return nil, fmt.Errorf("result %d: %w", i, err)
		}
		if err := decodeResultPayload(payload, &resp.Results[i]); err != nil {
			return nil, fmt.Errorf("result %d: %w", i, err)
		}
	}
	if resp.Elapsed, err = r.f64(); err != nil {
		return nil, err
	}
	if r.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadMessage, r.remaining())
	}
	return resp, nil
}

func decodeResultPayload(payload []byte, tr *TrackResult) error {
	r := &reader{buf: payload}
	rawTracks, err := r.u32()
	if err != nil {
		return err
	}
	numTracks, err := r.count(rawTracks, 4)
	if err != nil {
		return err
	}
	tr.Tracks = make([][]int, numTracks)
	for i := range tr.Tracks {
		rawHits, err := r.u32()
		if err != nil {
			return err
		}
		n, err := r.count(rawHits, 4)
		if err != nil {
			return err
		}
		track := make([]int, n)
		for j := range track {
			hit, err := r.u32()
			if err != nil {
				return err
			}
			track[j] = int(hit)
		}
		tr.Tracks[i] = track
	}
	tr.NumTracks = numTracks
	if tr.EdgePrecision, err = r.f64(); err != nil {
		return err
	}
	if tr.EdgeRecall, err = r.f64(); err != nil {
		return err
	}
	if tr.TrackEfficiency, err = r.f64(); err != nil {
		return err
	}
	if tr.FakeRate, err = r.f64(); err != nil {
		return err
	}
	rawErr, err := r.u32()
	if err != nil {
		return err
	}
	n, err := r.count(rawErr, 1)
	if err != nil {
		return err
	}
	tr.Error = string(r.buf[r.off : r.off+n])
	r.off += n
	if r.remaining() != 0 {
		return fmt.Errorf("%w: %d trailing bytes in result frame", ErrBadMessage, r.remaining())
	}
	return nil
}
