package recon_test

import (
	"context"
	"reflect"
	"testing"
	"time"

	"repro/internal/detector"
	"repro/recon"
)

// TestEngineBatchParity is the golden concurrency test: a 4-worker
// batch over 32 events must be bit-identical to serial Reconstruct.
// Run under -race by CI.
func TestEngineBatchParity(t *testing.T) {
	ds := testDataset(t, 0.02, 32, 77)
	r, err := recon.New(ds.Spec, recon.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}

	serial := make([]*recon.Result, len(ds.Events))
	for i, ev := range ds.Events {
		res, err := r.Reconstruct(context.Background(), ev)
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = res
	}

	eng, err := recon.NewEngine(r, recon.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := eng.ReconstructBatch(context.Background(), ds.Events)
	if err != nil {
		t.Fatal(err)
	}
	if len(parallel) != len(serial) {
		t.Fatalf("got %d results, want %d", len(parallel), len(serial))
	}
	for i := range serial {
		if !reflect.DeepEqual(parallel[i], serial[i]) {
			t.Fatalf("event %d: 4-worker result diverges from serial:\n got %+v\nwant %+v",
				i, parallel[i], serial[i])
		}
	}
}

// TestEngineBatchParityTruthGraphs repeats the parity check with the
// truth-level builder, whose per-event RNG must not depend on
// processing order.
func TestEngineBatchParityTruthGraphs(t *testing.T) {
	ds := testDataset(t, 0.02, 8, 78)
	r, err := recon.New(ds.Spec, recon.WithTruthLevelGraphs(1.5), recon.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	serial := make([]*recon.Result, len(ds.Events))
	for i, ev := range ds.Events {
		res, err := r.Reconstruct(context.Background(), ev)
		if err != nil {
			t.Fatal(err)
		}
		serial[i] = res
	}
	eng, err := recon.NewEngine(r, recon.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := eng.ReconstructBatch(context.Background(), ds.Events)
	if err != nil {
		t.Fatal(err)
	}
	for i := range serial {
		if !reflect.DeepEqual(parallel[i], serial[i]) {
			t.Fatalf("event %d: truth-level parallel result diverges from serial", i)
		}
	}
}

// slowExtractor delays stage 5 so cancellation can land mid-batch.
type slowExtractor struct{ delay time.Duration }

func (s slowExtractor) ExtractTracks(ctx context.Context, eg *recon.EventGraph, keep []bool) ([][]int, error) {
	select {
	case <-time.After(s.delay):
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return nil, nil
}

// TestEngineBatchCancellation: cancelling mid-batch returns promptly
// with ctx.Err() and partial results.
func TestEngineBatchCancellation(t *testing.T) {
	ds := testDataset(t, 0.02, 64, 79)
	r, err := recon.New(ds.Spec,
		recon.WithTrackExtractor(slowExtractor{delay: 20 * time.Millisecond}),
		recon.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := recon.NewEngine(r, recon.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() { time.Sleep(60 * time.Millisecond); cancel() }()

	start := time.Now()
	results, err := eng.ReconstructBatch(ctx, ds.Events)
	elapsed := time.Since(start)
	if err != context.Canceled {
		t.Fatalf("got err %v, want context.Canceled", err)
	}
	if elapsed > 5*time.Second {
		t.Fatalf("cancellation took %v, not prompt", elapsed)
	}
	missing := 0
	for _, res := range results {
		if res == nil {
			missing++
		}
	}
	if missing == 0 {
		t.Fatal("expected unfinished (nil) slots after mid-batch cancel")
	}
}

// TestEngineStreamOrdering: the stream emits outcomes in submission
// order, one per event, and matches serial results.
func TestEngineStreamOrdering(t *testing.T) {
	ds := testDataset(t, 0.02, 16, 80)
	r, err := recon.New(ds.Spec, recon.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	serial := make([]*recon.Result, len(ds.Events))
	for i, ev := range ds.Events {
		serial[i], err = r.Reconstruct(context.Background(), ev)
		if err != nil {
			t.Fatal(err)
		}
	}
	eng, err := recon.NewEngine(r, recon.WithWorkers(3), recon.WithQueueDepth(2))
	if err != nil {
		t.Fatal(err)
	}
	in := make(chan *recon.Event)
	go func() {
		defer close(in)
		for _, ev := range ds.Events {
			in <- ev
		}
	}()
	var got []recon.Outcome
	for o := range eng.ReconstructStream(context.Background(), in) {
		got = append(got, o)
	}
	if len(got) != len(ds.Events) {
		t.Fatalf("stream emitted %d outcomes for %d events", len(got), len(ds.Events))
	}
	for i, o := range got {
		if o.Index != i {
			t.Fatalf("outcome %d has index %d: stream is out of order", i, o.Index)
		}
		if o.Err != nil {
			t.Fatalf("outcome %d: %v", i, o.Err)
		}
		if !reflect.DeepEqual(o.Result, serial[i]) {
			t.Fatalf("outcome %d diverges from serial", i)
		}
	}
}

// TestEngineStreamBackpressure: with nobody consuming outcomes, the
// stream admits at most workers+queueDepth events (plus the one the
// dispatcher holds) before the producer blocks.
func TestEngineStreamBackpressure(t *testing.T) {
	ds := testDataset(t, 0.02, 1, 81)
	r, err := recon.New(ds.Spec, recon.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	const workers, queue = 2, 1
	eng, err := recon.NewEngine(r, recon.WithWorkers(workers), recon.WithQueueDepth(queue))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()

	in := make(chan *recon.Event)
	out := eng.ReconstructStream(ctx, in)
	accepted := 0
	ev := ds.Events[0]
	for i := 0; i < 20; i++ {
		select {
		case in <- ev:
			accepted++
		case <-time.After(300 * time.Millisecond):
			i = 20
		}
	}
	// window = workers+queue admitted, +1 held by the dispatcher between
	// reading and admitting.
	if max := workers + queue + 1; accepted > max+1 {
		t.Fatalf("stream accepted %d events with no consumer; want ≤ %d", accepted, max+1)
	}
	cancel()
	for range out {
	}
}

// TestEngineStreamCancellation: cancelling closes the output promptly.
func TestEngineStreamCancellation(t *testing.T) {
	ds := testDataset(t, 0.02, 1, 82)
	r, err := recon.New(ds.Spec,
		recon.WithTrackExtractor(slowExtractor{delay: 50 * time.Millisecond}),
		recon.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := recon.NewEngine(r, recon.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	in := make(chan *recon.Event, 8)
	for i := 0; i < 8; i++ {
		in <- ds.Events[0]
	}
	out := eng.ReconstructStream(ctx, in)
	<-out // at least one outcome flows
	cancel()
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-out:
			if !ok {
				return
			}
		case <-deadline:
			t.Fatal("stream did not close promptly after cancel")
		}
	}
}

// TestEngineNilAndEmpty: nil events leave nil slots; empty batches work.
func TestEngineNilAndEmpty(t *testing.T) {
	ds := testDataset(t, 0.02, 2, 83)
	r, err := recon.New(ds.Spec, recon.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := recon.NewEngine(r, recon.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	if res, err := eng.ReconstructBatch(context.Background(), nil); err != nil || len(res) != 0 {
		t.Fatalf("empty batch: res=%v err=%v", res, err)
	}
	res, err := eng.ReconstructBatch(context.Background(), []*detector.Event{ds.Events[0], nil, ds.Events[1]})
	if err != nil {
		t.Fatal(err)
	}
	if res[0] == nil || res[1] != nil || res[2] == nil {
		t.Fatalf("nil-event handling wrong: %v", res)
	}
}
