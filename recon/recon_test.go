package recon_test

import (
	"context"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/detector"
	"repro/internal/pipeline"
	"repro/recon"
)

func testDataset(t *testing.T, scale float64, events int, seed uint64) *detector.Dataset {
	t.Helper()
	spec := detector.Ex3Like(scale)
	spec.NumEvents = events
	return detector.Generate(spec, seed)
}

// TestFromPipelineParity: the recon stage decomposition must reproduce
// the monolithic pipeline's output bit-for-bit.
func TestFromPipelineParity(t *testing.T) {
	ds := testDataset(t, 0.02, 3, 42)
	p := pipeline.New(pipeline.DefaultConfig(ds.Spec), 5)
	r, err := recon.FromPipeline(p)
	if err != nil {
		t.Fatal(err)
	}
	for i, ev := range ds.Events {
		want := p.Reconstruct(ev)
		got, err := r.Reconstruct(context.Background(), ev)
		if err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("event %d: recon result diverges from pipeline:\n got %+v\nwant %+v", i, got, want)
		}
	}
}

// TestNewMatchesFromPipeline: New with the same seed builds the same
// models as pipeline.New.
func TestNewMatchesFromPipeline(t *testing.T) {
	ds := testDataset(t, 0.02, 2, 7)
	r1, err := recon.New(ds.Spec, recon.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	p := pipeline.New(pipeline.DefaultConfig(ds.Spec), 5)
	r2, err := recon.FromPipeline(p)
	if err != nil {
		t.Fatal(err)
	}
	ev := ds.Events[0]
	a, err := r1.Reconstruct(context.Background(), ev)
	if err != nil {
		t.Fatal(err)
	}
	b, err := r2.Reconstruct(context.Background(), ev)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("New(seed) and FromPipeline(pipeline.New(seed)) disagree")
	}
}

// TestTruthLevelGraphs: the truth-level builder keeps every truth edge,
// adds fakes, bypasses the filter, and is deterministic per event.
func TestTruthLevelGraphs(t *testing.T) {
	ds := testDataset(t, 0.02, 2, 9)
	r, err := recon.New(ds.Spec, recon.WithTruthLevelGraphs(1.5), recon.WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	ev := ds.Events[0]
	eg, err := r.BuildGraph(context.Background(), ev)
	if err != nil {
		t.Fatal(err)
	}
	if eg.NumEdges() < len(ev.TruthSrc) {
		t.Fatalf("truth-level graph has %d edges, fewer than %d truth edges", eg.NumEdges(), len(ev.TruthSrc))
	}
	trueCount := 0
	for _, l := range eg.Label {
		if l > 0.5 {
			trueCount++
		}
	}
	if trueCount < len(ev.TruthSrc) {
		t.Fatalf("only %d/%d truth edges labeled true", trueCount, len(ev.TruthSrc))
	}
	eg2, err := r.BuildGraph(context.Background(), ev)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(eg.G.Src, eg2.G.Src) || !reflect.DeepEqual(eg.G.Dst, eg2.G.Dst) {
		t.Fatal("truth-level building is not deterministic per event")
	}
}

// TestWithoutEdgeFilter: the filter-skip ablation passes every
// constructed edge to the GNN.
func TestWithoutEdgeFilter(t *testing.T) {
	ds := testDataset(t, 0.02, 1, 11)
	unfiltered, err := recon.New(ds.Spec, recon.WithoutEdgeFilter(), recon.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	filtered, err := recon.New(ds.Spec, recon.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	ev := ds.Events[0]
	egU, err := unfiltered.BuildGraph(context.Background(), ev)
	if err != nil {
		t.Fatal(err)
	}
	egF, err := filtered.BuildGraph(context.Background(), ev)
	if err != nil {
		t.Fatal(err)
	}
	if egU.NumEdges() < egF.NumEdges() {
		t.Fatalf("filter-skip graph has %d edges, filtered has %d", egU.NumEdges(), egF.NumEdges())
	}
}

// singleTrack is a custom stage-5 variant: every hit in one candidate.
type singleTrack struct{}

func (singleTrack) ExtractTracks(ctx context.Context, eg *recon.EventGraph, keep []bool) ([][]int, error) {
	track := make([]int, eg.NumVertices())
	for i := range track {
		track[i] = i
	}
	return [][]int{track}, ctx.Err()
}

// TestCustomStage: a swapped-in TrackExtractor is actually used.
func TestCustomStage(t *testing.T) {
	ds := testDataset(t, 0.02, 1, 13)
	r, err := recon.New(ds.Spec, recon.WithTrackExtractor(singleTrack{}), recon.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.Reconstruct(context.Background(), ds.Events[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tracks) != 1 || len(res.Tracks[0]) != ds.Events[0].NumHits() {
		t.Fatalf("custom extractor not used: got %d tracks", len(res.Tracks))
	}
}

// TestOptionValidation: invalid options surface as constructor errors.
func TestOptionValidation(t *testing.T) {
	spec := detector.Ex3Like(0.02)
	if _, err := recon.New(spec, recon.WithRadius(-1)); err == nil {
		t.Fatal("WithRadius(-1) accepted")
	}
	if _, err := recon.New(spec, recon.WithWorkers(0)); err == nil {
		t.Fatal("WithWorkers(0) accepted")
	}
	if _, err := recon.New(spec, recon.WithKernelWorkers(-1)); err == nil {
		t.Fatal("WithKernelWorkers(-1) accepted")
	}
	p := pipeline.New(pipeline.DefaultConfig(spec), 1)
	if _, err := recon.FromPipeline(p, recon.WithGNN(8, 2)); err == nil {
		t.Fatal("FromPipeline accepted WithGNN")
	}
}

// TestKernelWorkersParity: the intra-op worker budget is a pure
// performance knob — serial reconstruction at explicit budgets 1, 2,
// and 7 must be bit-identical, and an engine combining worker-level and
// kernel-level parallelism must match too.
func TestKernelWorkersParity(t *testing.T) {
	ds := testDataset(t, 0.02, 6, 91)

	var ref []*recon.Result
	for _, kw := range []int{1, 2, 7} {
		r, err := recon.New(ds.Spec, recon.WithSeed(5), recon.WithKernelWorkers(kw))
		if err != nil {
			t.Fatal(err)
		}
		results := make([]*recon.Result, len(ds.Events))
		for i, ev := range ds.Events {
			if results[i], err = r.Reconstruct(context.Background(), ev); err != nil {
				t.Fatal(err)
			}
		}
		if ref == nil {
			ref = results
			continue
		}
		if !reflect.DeepEqual(ref, results) {
			t.Fatalf("kernel workers %d: results diverge from budget 1", kw)
		}
	}

	r, err := recon.New(ds.Spec, recon.WithSeed(5), recon.WithKernelWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := recon.NewEngine(r, recon.WithWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	batch, err := eng.ReconstructBatch(context.Background(), ds.Events)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ref, batch) {
		t.Fatal("engine with kernel workers diverges from serial")
	}
}

// TestCheckpointInterchange: recon checkpoints and legacy
// pipeline.SaveModels checkpoints are interchangeable, and loading
// restores bit-identical inference.
func TestCheckpointInterchange(t *testing.T) {
	ds := testDataset(t, 0.02, 2, 21)
	dir := t.TempDir()

	p := pipeline.New(pipeline.DefaultConfig(ds.Spec), 5)
	legacy := filepath.Join(dir, "legacy.ckpt")
	if err := p.SaveModels(legacy); err != nil {
		t.Fatal(err)
	}
	want := p.Reconstruct(ds.Events[0])

	// Fresh models with a different seed, then restore the legacy file.
	r, err := recon.New(ds.Spec, recon.WithSeed(99))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.LoadCheckpoint(legacy); err != nil {
		t.Fatal(err)
	}
	got, err := r.Reconstruct(context.Background(), ds.Events[0])
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("inference diverges after loading a pipeline.SaveModels checkpoint")
	}

	// And the reverse: recon checkpoint into a pipeline.
	rckpt := filepath.Join(dir, "recon.ckpt")
	if err := r.SaveCheckpoint(rckpt); err != nil {
		t.Fatal(err)
	}
	p2 := pipeline.New(pipeline.DefaultConfig(ds.Spec), 123)
	if err := p2.LoadModels(rckpt); err != nil {
		t.Fatal(err)
	}
	if got2 := p2.Reconstruct(ds.Events[0]); !reflect.DeepEqual(got2, want) {
		t.Fatal("pipeline inference diverges after loading a recon checkpoint")
	}
}

// TestFitSmoke: Fit trains the default stages end-to-end on a tiny
// dataset and inference still runs.
func TestFitSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("training smoke test")
	}
	ds := testDataset(t, 0.015, 2, 31)
	r, err := recon.New(ds.Spec, recon.WithGNN(8, 2), recon.WithGNNTraining(2, 3e-3, 2.0), recon.WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Fit(context.Background(), ds.Events); err != nil {
		t.Fatal(err)
	}
	res, err := r.Reconstruct(context.Background(), ds.Events[0])
	if err != nil {
		t.Fatal(err)
	}
	if res.EdgeCounts.Accuracy() < 0 || res.EdgeCounts.Accuracy() > 1 {
		t.Fatal("degenerate edge counts after Fit")
	}
}

// TestFitCancelled: a pre-cancelled context aborts Fit immediately.
func TestFitCancelled(t *testing.T) {
	ds := testDataset(t, 0.015, 2, 33)
	r, err := recon.New(ds.Spec, recon.WithSeed(4))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := r.Fit(ctx, ds.Events); err != context.Canceled {
		t.Fatalf("Fit under cancelled ctx: got %v, want context.Canceled", err)
	}
}
