package recon

import (
	"context"
	"fmt"
	"time"

	"repro/internal/ddp"
	"repro/internal/dtrain"
	"repro/internal/ignn"
	"repro/internal/metrics"
	"repro/internal/sampling"
	"repro/internal/workspace"
)

// SyncStrategy selects how distributed training synchronizes gradients.
type SyncStrategy = ddp.SyncStrategy

// The gradient synchronization strategies of TrainDistributed.
const (
	// PerMatrixSync all-reduces each parameter matrix separately — the
	// baseline the paper measures against.
	PerMatrixSync SyncStrategy = ddp.PerMatrix
	// CoalescedSync stacks every gradient into one buffer and reduces
	// once — the paper's optimization.
	CoalescedSync SyncStrategy = ddp.Coalesced
	// BucketedSync reduces fixed-size buckets as their layers' backward
	// completes, overlapping communication with compute.
	BucketedSync SyncStrategy = ddp.Bucketed
)

// DistEpoch summarizes one epoch of distributed training.
type DistEpoch struct {
	Loss     float64       // mean canonical step loss
	Steps    int           // optimizer steps
	Sampling time.Duration // bulk sampling wall time (max across ranks)
	Training time.Duration // forward/backward/optimizer wall time (max across ranks)
	Comm     time.Duration // modeled α–β collective time
}

// DistCommStats is the charged collective traffic of a training run.
type DistCommStats struct {
	Calls        int64         // charged collectives
	LogicalBytes int64         // flattened-gradient payload bytes
	Modeled      time.Duration // α–β ring time
}

// DistTrainResult is the outcome of TrainDistributed.
type DistTrainResult struct {
	// Classifier is the trained GNN stage; plug it into a Reconstructor
	// with WithEdgeClassifier. It also implements Parameterized, so
	// checkpointing picks its weights up.
	Classifier EdgeClassifier
	// Losses is the full per-step canonical loss trajectory — bitwise
	// identical for every rank count, sync strategy, and bulk batch
	// count under a fixed seed.
	Losses []float64
	// Epochs holds the per-epoch summaries.
	Epochs []DistEpoch
	// Comm is the charged collective traffic across the run.
	Comm DistCommStats
	// Buckets is the number of collectives each step issued.
	Buckets int
}

// Evaluate scores every edge of the graphs with the trained classifier
// and returns precision and recall at the given threshold.
func (r *DistTrainResult) Evaluate(ctx context.Context, graphs []*EventGraph, threshold float64) (precision, recall float64, err error) {
	var counts metrics.BinaryCounts
	a := workspace.NewArena()
	for _, eg := range graphs {
		if eg.NumEdges() == 0 {
			continue
		}
		scores, err := r.Classifier.ScoreEdges(ctx, a, eg)
		if err != nil {
			return 0, 0, err
		}
		for k, s := range scores {
			counts.Add(s >= threshold, eg.Label[k] > 0.5)
		}
	}
	return counts.Precision(), counts.Recall(), nil
}

// TrainDistributed trains an Interaction GNN edge classifier over the
// event graphs with the paper's full distributed pipeline: P rank
// goroutines (WithRanks), each owning a model replica and a pinned
// arena, bulk-sample their shard of every batch as one sparse-matrix
// operation (WithBulkBatches) and synchronize gradients with coalesced,
// bucketed-overlapped, or per-matrix collectives (WithSyncStrategy,
// WithBucketBytes).
//
// Determinism contract: under a fixed WithSeed, the loss trajectory and
// the trained weights are bit-for-bit identical for every rank count,
// sync strategy, and bulk batch count — parallelism and communication
// layout are performance knobs, never numeric ones. See internal/dtrain
// for the mechanism (per-root sampling streams, canonical gradient
// micro-blocks, fixed-tree reduction).
//
// Cancelling ctx stops all ranks at the next step boundary and returns
// the work completed so far alongside ctx.Err().
func TrainDistributed(ctx context.Context, graphs []*EventGraph, opts ...Option) (*DistTrainResult, error) {
	set, err := applyOptions(opts)
	if err != nil {
		return nil, err
	}
	var nodeF, edgeF int
	for _, eg := range graphs {
		if eg.NumVertices() > 0 && eg.NumEdges() > 0 {
			nodeF, edgeF = eg.X.Cols(), eg.Y.Cols()
			break
		}
	}
	if nodeF == 0 {
		return nil, fmt.Errorf("recon: TrainDistributed needs at least one non-empty event graph")
	}

	gnn := ignn.Config{NodeFeatures: nodeF, EdgeFeatures: edgeF, Hidden: 16, Steps: 3}
	if set.gnnHidden != nil {
		gnn.Hidden = *set.gnnHidden
	}
	if set.gnnSteps != nil {
		gnn.Steps = *set.gnnSteps
	}

	cfg := dtrain.DefaultConfig(gnn)
	cfg.Epochs = set.gnnEpochs
	cfg.BatchSize = set.batchSize
	cfg.LR = set.gnnLR
	cfg.PosWeight = set.gnnPosWeight
	cfg.Ranks = set.ranks
	cfg.Strategy = set.sync
	cfg.BucketBytes = set.bucketBytes
	cfg.BulkBatches = set.bulkBatches
	cfg.GradBlocks = set.gradBlocks
	cfg.KernelWorkers = set.kernelWorkers
	cfg.Shadow = sampling.DefaultConfig()
	cfg.Seed = set.seed

	tr := dtrain.New(cfg)
	epochs, trainErr := tr.Train(ctx, graphs)

	res := &DistTrainResult{
		Classifier: gnnClassifier{m: tr.Model()},
		Buckets:    tr.NumBuckets(),
	}
	for _, es := range epochs {
		res.Losses = append(res.Losses, es.StepLosses...)
		res.Epochs = append(res.Epochs, DistEpoch{
			Loss:     es.Loss,
			Steps:    es.Steps,
			Sampling: es.Timer.Get(metrics.PhaseSampling),
			Training: es.Timer.Get(metrics.PhaseTraining),
			Comm:     es.Comm.Modeled,
		})
	}
	cs := tr.CommStats()
	res.Comm = DistCommStats{Calls: cs.Calls, LogicalBytes: cs.LogicalBytes, Modeled: cs.Modeled}
	if trainErr != nil {
		return res, trainErr
	}
	return res, nil
}
