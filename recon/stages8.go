package recon

import (
	"context"

	"repro/internal/detector"
	"repro/internal/kernels"
	"repro/internal/knnsearch"
	"repro/internal/tensor"
)

// The int8 stage adapters mirror stages32.go one tier down: event and
// edge features convert to float32 once per event from the worker's
// arena, the trained weights were quantized once by syncInference, and
// the stage MLP/GNN forwards run the fused int8 kernels. Scores and
// thresholds stay float64 — the decision logic and track extractor are
// shared with both float paths unchanged.

// mlpEmbedder8 adapts the stage-1 MLP at int8. The stage interface
// returns a float64 matrix, so the embedding widens on the way out —
// only custom graph builders consume it; the default i8 radius builder
// embeds internally and skips the widening.
type mlpEmbedder8 struct{ r *Reconstructor }

func (e mlpEmbedder8) Embed(ctx context.Context, a *Arena, ev *Event) (*Matrix, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	mark := a.Checkpoint()
	kc := kernels.From(ctx)
	emb := e.r.i8.embed.EmbedCtx(kc, a, features32(a, ev))
	out := tensor.ConvertFrom[float64](nil, emb)
	a.ResetTo(mark)
	return out, nil
}

func (e mlpEmbedder8) Params() []*Param { return e.r.p.Embedder.Params() }

// radiusBuilder8 is stage 2 at int8: embed with the quantized MLP and
// answer the fixed-radius queries on the float32 embedding it emits.
type radiusBuilder8 struct {
	r         *Reconstructor
	radius    float64
	maxDegree int
}

func (b radiusBuilder8) BuildEdges(ctx context.Context, a *Arena, ev *Event, _ func() (*Matrix, error)) (src, dst []int, err error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	mark := a.Checkpoint()
	defer a.ResetTo(mark)
	kc := kernels.From(ctx)
	emb := b.r.i8.embed.EmbedCtx(kc, a, features32(a, ev))
	src, dst = knnsearch.BuildRadiusGraphCtx(kc, emb, b.radius, b.maxDegree)
	return src, dst, nil
}

// mlpFilter8 adapts the stage-3 edge-filter MLP at int8.
type mlpFilter8 struct {
	r    *Reconstructor
	spec DetectorSpec
}

func (f mlpFilter8) FilterEdges(ctx context.Context, a *Arena, ev *Event, src, dst []int) (fsrc, fdst []int, err error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	if len(src) == 0 {
		return nil, nil, nil
	}
	mark := a.Checkpoint()
	edgeFeat := detector.EdgeFeaturesWith(a, f.spec, ev, src, dst)
	kc := kernels.From(ctx)
	keep := f.r.i8.filter.KeepCtx(kc, a, features32(a, ev), tensor.ConvertFrom[float32](a, edgeFeat), src, dst)
	a.ResetTo(mark)
	for k := range src {
		if keep[k] {
			fsrc = append(fsrc, src[k])
			fdst = append(fdst, dst[k])
		}
	}
	return fsrc, fdst, nil
}

func (f mlpFilter8) Params() []*Param { return f.r.p.Filter.Params() }

// gnnClassifier8 adapts the stage-4 Interaction GNN at int8.
type gnnClassifier8 struct{ r *Reconstructor }

func (c gnnClassifier8) ScoreEdges(ctx context.Context, a *Arena, eg *EventGraph) ([]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	mark := a.Checkpoint()
	defer a.ResetTo(mark)
	x := tensor.ConvertFrom[float32](a, eg.X)
	y := tensor.ConvertFrom[float32](a, eg.Y)
	return c.r.i8.gnn.EdgeScoresCtx(kernels.From(ctx), a, eg.G.Src, eg.G.Dst, x, y), nil
}

func (c gnnClassifier8) Params() []*Param { return c.r.p.GNN.Params() }
