package recon

import (
	"context"

	"repro/internal/detector"
	"repro/internal/embed"
	"repro/internal/filter"
	"repro/internal/graph"
	"repro/internal/ignn"
	"repro/internal/kernels"
	"repro/internal/knnsearch"
	"repro/internal/rng"
)

// The default stage adapters read their intra-op worker budget out of
// ctx (kernels.From): the Reconstructor installs its configured budget
// on serial entry points and the Engine installs each worker's share,
// so custom stages see only the standard context.Context signature
// while the built-in kernels compose with worker-level parallelism.

// mlpEmbedder adapts the stage-1 metric-learning MLP.
type mlpEmbedder struct{ m *embed.Embedder }

func (e mlpEmbedder) Embed(ctx context.Context, a *Arena, ev *Event) (*Matrix, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return e.m.EmbedCtx(kernels.From(ctx), a, ev.Features), nil
}

func (e mlpEmbedder) Params() []*Param { return e.m.Params() }

// radiusBuilder adapts stage 2: fixed-radius neighbors in embedding
// space, capped per-vertex degree.
type radiusBuilder struct {
	radius    float64
	maxDegree int
}

func (b radiusBuilder) BuildEdges(ctx context.Context, a *Arena, ev *Event, embedFn func() (*Matrix, error)) (src, dst []int, err error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	embedded, err := embedFn()
	if err != nil {
		return nil, nil, err
	}
	src, dst = knnsearch.BuildRadiusGraphCtx(kernels.From(ctx), embedded, b.radius, b.maxDegree)
	return src, dst, nil
}

// truthBuilder is the truth-level stage-2 variant: ground-truth edges
// plus fakeRatio random fakes per true edge. The fake-edge RNG is seeded
// from the event's own structure, so building the same event is
// deterministic regardless of processing order or worker count.
type truthBuilder struct {
	fakeRatio float64
	baseSeed  uint64
}

// eventSeed mixes the base seed with stable structural features of the
// event (splitmix64 finalizer), giving each event its own deterministic
// fake-edge stream independent of submission order.
func eventSeed(base uint64, ev *Event) uint64 {
	h := base ^ 0x9E3779B97F4A7C15
	h = (h ^ uint64(ev.NumHits())) * 0xBF58476D1CE4E5B9
	h = (h ^ uint64(len(ev.TruthSrc))) * 0x94D049BB133111EB
	if n := len(ev.TruthSrc); n > 0 {
		h ^= uint64(ev.TruthSrc[0])<<32 | uint64(ev.TruthDst[n-1])
	}
	h ^= h >> 31
	h *= 0xBF58476D1CE4E5B9
	h ^= h >> 27
	return h
}

func (b truthBuilder) BuildEdges(ctx context.Context, a *Arena, ev *Event, _ func() (*Matrix, error)) (src, dst []int, err error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	r := rng.New(eventSeed(b.baseSeed, ev))
	src = append([]int(nil), ev.TruthSrc...)
	dst = append([]int(nil), ev.TruthDst...)
	n := ev.NumHits()
	nFake := int(float64(len(src)) * b.fakeRatio)
	for i := 0; i < nFake; i++ {
		p, q := r.Intn(n), r.Intn(n)
		if p == q || ev.IsTruthEdge(p, q) {
			continue
		}
		src = append(src, p)
		dst = append(dst, q)
	}
	return src, dst, nil
}

// mlpFilter adapts the stage-3 edge-filter MLP.
type mlpFilter struct {
	f    *filter.EdgeFilter
	spec DetectorSpec
}

func (f mlpFilter) FilterEdges(ctx context.Context, a *Arena, ev *Event, src, dst []int) (fsrc, fdst []int, err error) {
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	if len(src) == 0 {
		return nil, nil, nil
	}
	edgeFeat := detector.EdgeFeatures(f.spec, ev, src, dst)
	keep := f.f.KeepCtx(kernels.From(ctx), a, ev.Features, edgeFeat, src, dst)
	for k := range src {
		if keep[k] {
			fsrc = append(fsrc, src[k])
			fdst = append(fdst, dst[k])
		}
	}
	return fsrc, fdst, nil
}

func (f mlpFilter) Params() []*Param { return f.f.Params() }

// passFilter is the filter-skip ablation: stage 3 keeps every edge.
type passFilter struct{}

func (passFilter) FilterEdges(ctx context.Context, _ *Arena, _ *Event, src, dst []int) ([]int, []int, error) {
	return src, dst, ctx.Err()
}

// gnnClassifier adapts the stage-4 Interaction GNN.
type gnnClassifier struct{ m *ignn.Model }

func (c gnnClassifier) ScoreEdges(ctx context.Context, a *Arena, eg *EventGraph) ([]float64, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return c.m.EdgeScoresCtx(kernels.From(ctx), a, eg.G.Src, eg.G.Dst, eg.X, eg.Y), nil
}

func (c gnnClassifier) Params() []*Param { return c.m.Params() }

// ccExtractor is stage 5: connected components of the surviving edges,
// dropping candidates shorter than minTrackHits.
type ccExtractor struct{ minTrackHits int }

func (x ccExtractor) ExtractTracks(ctx context.Context, eg *EventGraph, keep []bool) ([][]int, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	final := eg.G.FilterEdges(keep)
	labels, count := final.ConnectedComponents()
	var tracks [][]int
	for _, c := range graph.ComponentMembers(labels, count) {
		if len(c) >= x.minTrackHits {
			tracks = append(tracks, c)
		}
	}
	return tracks, nil
}
