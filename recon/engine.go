package recon

import (
	"context"
	"errors"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/kernels"
	"repro/internal/workspace"
)

// Outcome is one event's reconstruction from a streaming engine:
// either a Result or a per-event error, tagged with the submission
// index. Event errors never abort the stream.
type Outcome struct {
	Index  int     // position in the submission order
	Event  *Event  // the submitted event
	Result *Result // nil iff Err != nil
	Err    error
}

// Engine executes a Reconstructor concurrently: a fixed worker pool
// where each worker pins one workspace arena for its whole lifetime,
// reconstructing events with zero steady-state allocation churn.
//
// Semantics (see API.md):
//   - Determinism: results are bit-identical to serial Reconstruct at
//     any worker count — each event is an independent unit of work and
//     the kernels parallelize deterministically.
//   - Ordering: ReconstructBatch returns results positionally;
//     ReconstructStream emits outcomes in submission order.
//   - Backpressure: at most workers+queueDepth events are in flight; a
//     stream producer blocks once the window is full.
//   - Errors: per-event errors ride in the Outcome (stream) or leave a
//     nil hole (batch); cancellation and admission rejection
//     (ErrOverloaded) are the only engine-level errors.
//   - Admission: at most workers+queueDepth events are in flight across
//     all entry points. A batch that would push past the window is
//     rejected immediately with ErrOverloaded (fast fail, never an
//     unbounded queue) — except that an idle engine always admits one
//     request of any size, so a single large batch can still run; its
//     internal parallelism is bounded by the worker pool regardless.
//     Streams apply blocking backpressure to their producer instead of
//     fast-failing, but their in-flight events count against the same
//     window, so concurrent batches see the load.
//   - Deadlines: WithRequestTimeout puts a per-call (batch) or per-event
//     (stream) deadline on the work, propagated into every stage call.
//   - Panic isolation: a stage panic is recovered into a per-event
//     *StageError; sibling events keep completing and the worker
//     replaces its arena rather than dying.
type Engine struct {
	rec           *Reconstructor
	workers       int
	queue         int
	kernelWorkers int
	tiling        kernels.Tiling
	timeout       time.Duration

	limit    int64        // admission window: workers + queueDepth events
	inflight atomic.Int64 // events admitted and not yet finished
	rejected atomic.Int64 // requests fast-failed with ErrOverloaded
	panics   atomic.Int64 // stage panics recovered into StageErrors

	// Micro-batching (see microbatch.go); coalescer is nil when disabled.
	batchWindow      time.Duration
	maxBatchEvents   int
	coalescer        *coalescer
	coalescedBatches atomic.Int64 // micro-batches dispatched
	coalescedEvents  atomic.Int64 // events executed through the coalesced path
}

// EngineStats is a point-in-time snapshot of the engine's admission
// window and fault counters, surfaced by /statz.
type EngineStats struct {
	InFlight         int64 // events admitted and not yet finished
	Capacity         int64 // admission window size (workers + queueDepth)
	Rejected         int64 // requests rejected with ErrOverloaded
	PanicsRecovered  int64 // stage panics recovered into per-event errors
	CoalescedBatches int64 // micro-batches dispatched by the coalescer
	CoalescedEvents  int64 // events executed through the coalesced path
}

// Stats returns the engine's admission and fault counters.
func (e *Engine) Stats() EngineStats {
	return EngineStats{
		InFlight:         e.inflight.Load(),
		Capacity:         e.limit,
		Rejected:         e.rejected.Load(),
		PanicsRecovered:  e.panics.Load(),
		CoalescedBatches: e.coalescedBatches.Load(),
		CoalescedEvents:  e.coalescedEvents.Load(),
	}
}

// admit reserves n in-flight slots, or reports overload. An idle engine
// (nothing in flight) admits any n so oversized batches remain
// servable; otherwise the reservation must fit the window.
func (e *Engine) admit(n int) bool {
	for {
		cur := e.inflight.Load()
		if cur > 0 && cur+int64(n) > e.limit {
			e.rejected.Add(1)
			return false
		}
		if e.inflight.CompareAndSwap(cur, cur+int64(n)) {
			return true
		}
	}
}

// NewEngine wraps a reconstructor in a concurrent execution core.
// Relevant options: WithWorkers, WithQueueDepth, WithKernelWorkers
// (defaulting to the reconstructor's own setting, then to an automatic
// GOMAXPROCS/workers share so pool and kernel parallelism compose).
// Options already applied to the Reconstructor (thresholds, stages)
// are not re-interpreted here.
func NewEngine(rec *Reconstructor, opts ...Option) (*Engine, error) {
	set, err := applyOptions(opts)
	if err != nil {
		return nil, err
	}
	if set.kernelWorkers == 0 {
		set.kernelWorkers = rec.set.kernelWorkers
	}
	if set.tiling == (kernels.Tiling{}) {
		set.tiling = rec.set.tiling
	}
	e := &Engine{
		rec:            rec,
		workers:        set.workers,
		queue:          set.queueDepth,
		kernelWorkers:  set.kernelWorkers,
		tiling:         set.tiling,
		timeout:        set.requestTimeout,
		limit:          int64(set.workers + set.queueDepth),
		batchWindow:    set.batchWindow,
		maxBatchEvents: set.maxBatchEvents,
	}
	if set.batchWindow > 0 {
		e.coalescer = &coalescer{}
	}
	return e, nil
}

// reconstructGuarded is the engine's fault boundary around one event:
// it tags per-event StageErrors with the submission index, counts
// recovered panics, and — should a panic escape the stage-level guards
// (reconstructWith recovers panics inside stage implementations, not in
// the assembly/metrics glue) — recovers it here and hands the worker a
// fresh arena, since the old one may have been abandoned mid-mutation.
func (e *Engine) reconstructGuarded(ctx context.Context, arena **workspace.Arena, idx int, ev *Event) (res *Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			e.panics.Add(1)
			err = &StageError{Stage: "engine", Event: idx, Panic: p, Stack: debug.Stack()}
			*arena = workspace.NewArena()
		}
	}()
	res, err = e.rec.reconstructWith(ctx, *arena, ev)
	if se := AsStageError(err); se != nil {
		if se.Event < 0 {
			se.Event = idx
		}
		if se.IsPanic() {
			e.panics.Add(1)
		}
	}
	return res, err
}

// unitCtx derives the context one event runs under: the worker's
// kernel-budget context, bounded by the per-request deadline when one
// is configured. The returned cancel must be called once the event
// finishes to release the timer.
func (e *Engine) unitCtx(wctx context.Context) (context.Context, context.CancelFunc) {
	if e.timeout <= 0 {
		return wctx, func() {}
	}
	return context.WithTimeout(wctx, e.timeout)
}

// workerCtx installs one pool worker's intra-op kernel budget on ctx:
// the host divided across the workers actually running, so
// workers × kernel-workers never exceeds GOMAXPROCS.
func (e *Engine) workerCtx(ctx context.Context, workers int) context.Context {
	kc := kernels.Budget(workers, e.kernelWorkers)
	kc.Tiles = e.tiling
	return kernels.Into(ctx, kc)
}

// Reconstructor returns the engine's underlying reconstructor.
func (e *Engine) Reconstructor() *Reconstructor { return e.rec }

// Workers returns the worker-pool size.
func (e *Engine) Workers() int { return e.workers }

// ReconstructBatch reconstructs a batch concurrently and returns
// results in event order, bit-identical to calling Reconstruct on each
// event serially. On cancellation it returns promptly with the results
// completed so far (unfinished slots are nil) and ctx.Err(). A nil
// event leaves a nil result slot.
//
// The call is admission-controlled: if the batch would push the engine
// past its workers+queueDepth in-flight window while other work is
// running, it is rejected immediately with ErrOverloaded and no event
// is reconstructed. With WithRequestTimeout set, the whole call runs
// under that deadline and returns context.DeadlineExceeded (with the
// results completed so far) when it expires. Stage panics never escape:
// each becomes a per-event *StageError, counted in Stats, and the
// batch's other events complete normally.
func (e *Engine) ReconstructBatch(ctx context.Context, events []*Event) ([]*Result, error) {
	results := make([]*Result, len(events))
	if len(events) == 0 {
		return results, ctx.Err()
	}
	if !e.admit(len(events)) {
		return nil, ErrOverloaded
	}
	defer e.inflight.Add(-int64(len(events)))
	if e.timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, e.timeout)
		defer cancel()
	}
	// Touching each event's lazily-built truth set up front keeps the
	// workers read-only on shared *Event values, even when the same
	// pointer appears in the batch twice.
	warmTruth(events)

	workers := e.workers
	if workers > len(events) {
		workers = len(events)
	}
	var (
		next     atomic.Int64
		errMu    sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			arena := workspace.NewArena()
			defer func() { arena.Reset() }()
			wctx := e.workerCtx(ctx, workers)
			for {
				i := int(next.Add(1)) - 1
				if i >= len(events) || ctx.Err() != nil {
					return
				}
				if events[i] == nil {
					continue
				}
				res, err := e.reconstructGuarded(wctx, &arena, i, events[i])
				if err != nil {
					if ctx.Err() == nil {
						errMu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						errMu.Unlock()
					}
					continue
				}
				results[i] = res
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return results, err
	}
	return results, firstErr
}

// ReconstructStream reconstructs events as they arrive on in, emitting
// one Outcome per event on the returned channel in submission order.
// At most workers+queueDepth events are admitted at once — once the
// window is full, reads from in pause until an outcome is consumed
// (bounded in-flight backpressure). The output channel closes after in
// closes and every admitted event's outcome has been emitted, or
// promptly on cancellation (events never admitted are dropped). The
// consumer must drain the output channel or cancel the context;
// abandoning it mid-stream leaks the pool's goroutines.
func (e *Engine) ReconstructStream(ctx context.Context, in <-chan *Event) <-chan Outcome {
	out := make(chan Outcome)
	work := make(chan Outcome) // dispatched units: Result/Err unset
	done := make(chan Outcome) // finished units, arbitrary order
	window := e.workers + e.queue

	// Stream events count against the engine's shared admission window
	// (so concurrent batches fast-fail while a stream saturates it), but
	// the stream itself applies blocking backpressure to its producer
	// rather than rejecting. admitted/released reconcile the shared
	// counter once the dispatcher and reorderer both exit, covering
	// events that were admitted but never emitted on cancellation.
	var admitted, released atomic.Int64
	var roles sync.WaitGroup
	roles.Add(2)
	go func() {
		roles.Wait()
		e.inflight.Add(released.Load() - admitted.Load())
	}()

	// Dispatcher: admit events under the in-flight window.
	admit := make(chan struct{}, window)
	go func() {
		defer roles.Done()
		defer close(work)
		idx := 0
		for {
			select {
			case <-ctx.Done():
				return
			case ev, ok := <-in:
				if !ok {
					return
				}
				select {
				case admit <- struct{}{}:
					admitted.Add(1)
					e.inflight.Add(1)
				case <-ctx.Done():
					return
				}
				if ev != nil {
					// See ReconstructBatch: keep workers read-only.
					ev.IsTruthEdge(0, 0)
				}
				select {
				case work <- Outcome{Index: idx, Event: ev}:
					idx++
				case <-ctx.Done():
					return
				}
			}
		}
	}()

	// Workers: one pinned arena each, replaced if a panic escapes the
	// stage guards; each event runs under the per-request deadline.
	var wg sync.WaitGroup
	for w := 0; w < e.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			arena := workspace.NewArena()
			defer func() { arena.Reset() }()
			wctx := e.workerCtx(ctx, e.workers)
			for u := range work {
				if ctx.Err() != nil {
					return
				}
				if u.Event == nil {
					u.Err = errNilEvent
				} else {
					uctx, cancel := e.unitCtx(wctx)
					u.Result, u.Err = e.reconstructGuarded(uctx, &arena, u.Index, u.Event)
					cancel()
				}
				select {
				case done <- u:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() { wg.Wait(); close(done) }()

	// Reorderer: emit in submission order, releasing window slots as
	// outcomes leave, which is what bounds the reorder buffer.
	go func() {
		defer roles.Done()
		defer close(out)
		pending := make(map[int]Outcome, window)
		nextIdx := 0
		for u := range done {
			pending[u.Index] = u
			for {
				o, ok := pending[nextIdx]
				if !ok {
					break
				}
				delete(pending, nextIdx)
				select {
				case out <- o:
				case <-ctx.Done():
					return
				}
				<-admit
				released.Add(1)
				e.inflight.Add(-1)
				nextIdx++
			}
		}
	}()
	return out
}

var errNilEvent = errors.New("recon: nil event")

// warmTruth forces each event's lazily-built truth-edge set so that
// concurrent workers never mutate shared Event state.
func warmTruth(events []*Event) {
	for _, ev := range events {
		if ev != nil {
			ev.IsTruthEdge(0, 0)
		}
	}
}
