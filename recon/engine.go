package recon

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"

	"repro/internal/kernels"
	"repro/internal/workspace"
)

// Outcome is one event's reconstruction from a streaming engine:
// either a Result or a per-event error, tagged with the submission
// index. Event errors never abort the stream.
type Outcome struct {
	Index  int     // position in the submission order
	Event  *Event  // the submitted event
	Result *Result // nil iff Err != nil
	Err    error
}

// Engine executes a Reconstructor concurrently: a fixed worker pool
// where each worker pins one workspace arena for its whole lifetime,
// reconstructing events with zero steady-state allocation churn.
//
// Semantics (see API.md):
//   - Determinism: results are bit-identical to serial Reconstruct at
//     any worker count — each event is an independent unit of work and
//     the kernels parallelize deterministically.
//   - Ordering: ReconstructBatch returns results positionally;
//     ReconstructStream emits outcomes in submission order.
//   - Backpressure: at most workers+queueDepth events are in flight; a
//     stream producer blocks once the window is full.
//   - Errors: per-event errors ride in the Outcome (stream) or leave a
//     nil hole (batch); cancellation is the only engine-level error.
type Engine struct {
	rec           *Reconstructor
	workers       int
	queue         int
	kernelWorkers int
}

// NewEngine wraps a reconstructor in a concurrent execution core.
// Relevant options: WithWorkers, WithQueueDepth, WithKernelWorkers
// (defaulting to the reconstructor's own setting, then to an automatic
// GOMAXPROCS/workers share so pool and kernel parallelism compose).
// Options already applied to the Reconstructor (thresholds, stages)
// are not re-interpreted here.
func NewEngine(rec *Reconstructor, opts ...Option) (*Engine, error) {
	set, err := applyOptions(opts)
	if err != nil {
		return nil, err
	}
	if set.kernelWorkers == 0 {
		set.kernelWorkers = rec.set.kernelWorkers
	}
	return &Engine{rec: rec, workers: set.workers, queue: set.queueDepth, kernelWorkers: set.kernelWorkers}, nil
}

// workerCtx installs one pool worker's intra-op kernel budget on ctx:
// the host divided across the workers actually running, so
// workers × kernel-workers never exceeds GOMAXPROCS.
func (e *Engine) workerCtx(ctx context.Context, workers int) context.Context {
	return kernels.Into(ctx, kernels.Budget(workers, e.kernelWorkers))
}

// Reconstructor returns the engine's underlying reconstructor.
func (e *Engine) Reconstructor() *Reconstructor { return e.rec }

// Workers returns the worker-pool size.
func (e *Engine) Workers() int { return e.workers }

// ReconstructBatch reconstructs a batch concurrently and returns
// results in event order, bit-identical to calling Reconstruct on each
// event serially. On cancellation it returns promptly with the results
// completed so far (unfinished slots are nil) and ctx.Err(). A nil
// event leaves a nil result slot.
func (e *Engine) ReconstructBatch(ctx context.Context, events []*Event) ([]*Result, error) {
	results := make([]*Result, len(events))
	if len(events) == 0 {
		return results, ctx.Err()
	}
	// Touching each event's lazily-built truth set up front keeps the
	// workers read-only on shared *Event values, even when the same
	// pointer appears in the batch twice.
	warmTruth(events)

	workers := e.workers
	if workers > len(events) {
		workers = len(events)
	}
	var (
		next     atomic.Int64
		errMu    sync.Mutex
		firstErr error
		wg       sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			arena := workspace.NewArena()
			defer arena.Reset()
			wctx := e.workerCtx(ctx, workers)
			for {
				i := int(next.Add(1)) - 1
				if i >= len(events) || ctx.Err() != nil {
					return
				}
				if events[i] == nil {
					continue
				}
				res, err := e.rec.reconstructWith(wctx, arena, events[i])
				if err != nil {
					if ctx.Err() == nil {
						errMu.Lock()
						if firstErr == nil {
							firstErr = err
						}
						errMu.Unlock()
					}
					continue
				}
				results[i] = res
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return results, err
	}
	return results, firstErr
}

// ReconstructStream reconstructs events as they arrive on in, emitting
// one Outcome per event on the returned channel in submission order.
// At most workers+queueDepth events are admitted at once — once the
// window is full, reads from in pause until an outcome is consumed
// (bounded in-flight backpressure). The output channel closes after in
// closes and every admitted event's outcome has been emitted, or
// promptly on cancellation (events never admitted are dropped). The
// consumer must drain the output channel or cancel the context;
// abandoning it mid-stream leaks the pool's goroutines.
func (e *Engine) ReconstructStream(ctx context.Context, in <-chan *Event) <-chan Outcome {
	out := make(chan Outcome)
	work := make(chan Outcome) // dispatched units: Result/Err unset
	done := make(chan Outcome) // finished units, arbitrary order
	window := e.workers + e.queue

	// Dispatcher: admit events under the in-flight window.
	admit := make(chan struct{}, window)
	go func() {
		defer close(work)
		idx := 0
		for {
			select {
			case <-ctx.Done():
				return
			case ev, ok := <-in:
				if !ok {
					return
				}
				select {
				case admit <- struct{}{}:
				case <-ctx.Done():
					return
				}
				if ev != nil {
					// See ReconstructBatch: keep workers read-only.
					ev.IsTruthEdge(0, 0)
				}
				select {
				case work <- Outcome{Index: idx, Event: ev}:
					idx++
				case <-ctx.Done():
					return
				}
			}
		}
	}()

	// Workers: one pinned arena each.
	var wg sync.WaitGroup
	for w := 0; w < e.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			arena := workspace.NewArena()
			defer arena.Reset()
			wctx := e.workerCtx(ctx, e.workers)
			for u := range work {
				if ctx.Err() != nil {
					return
				}
				if u.Event == nil {
					u.Err = errNilEvent
				} else {
					u.Result, u.Err = e.rec.reconstructWith(wctx, arena, u.Event)
				}
				select {
				case done <- u:
				case <-ctx.Done():
					return
				}
			}
		}()
	}
	go func() { wg.Wait(); close(done) }()

	// Reorderer: emit in submission order, releasing window slots as
	// outcomes leave, which is what bounds the reorder buffer.
	go func() {
		defer close(out)
		pending := make(map[int]Outcome, window)
		nextIdx := 0
		for u := range done {
			pending[u.Index] = u
			for {
				o, ok := pending[nextIdx]
				if !ok {
					break
				}
				delete(pending, nextIdx)
				select {
				case out <- o:
				case <-ctx.Done():
					return
				}
				<-admit
				nextIdx++
			}
		}
	}()
	return out
}

var errNilEvent = errors.New("recon: nil event")

// warmTruth forces each event's lazily-built truth-edge set so that
// concurrent workers never mutate shared Event state.
func warmTruth(events []*Event) {
	for _, ev := range events {
		if ev != nil {
			ev.IsTruthEdge(0, 0)
		}
	}
}
