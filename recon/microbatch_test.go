package recon_test

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/recon"
)

// The micro-batch suite: PR 8's coalescing layer must be invisible in
// the results — merged batches bit-identical to per-request execution
// at any worker count — while honoring per-request deadlines and the
// admission window. All of it runs under -race in CI.

// coalesceAll fires one concurrent ReconstructCoalesced call per event
// and collects per-call results and errors.
func coalesceAll(eng *recon.Engine, ctxs []context.Context, events []*recon.Event) ([][]*recon.Result, []error) {
	results := make([][]*recon.Result, len(events))
	errs := make([]error, len(events))
	var wg sync.WaitGroup
	for i := range events {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = eng.ReconstructCoalesced(ctxs[i], []*recon.Event{events[i]})
		}(i)
	}
	wg.Wait()
	return results, errs
}

// TestCoalescedParity: concurrent single-event requests merged through
// the batch window must be bit-identical to serial per-event execution,
// across worker counts.
func TestCoalescedParity(t *testing.T) {
	ds := testDataset(t, 0.02, 12, 88)
	r, err := recon.New(ds.Spec, recon.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	baseline := chaosBaseline(t, r, ds.Events)

	for _, workers := range []int{1, 2, 4} {
		eng, err := recon.NewEngine(r,
			recon.WithWorkers(workers),
			recon.WithQueueDepth(64),
			recon.WithBatchWindow(3*time.Millisecond),
			recon.WithMaxBatchEvents(4),
		)
		if err != nil {
			t.Fatal(err)
		}
		ctxs := make([]context.Context, len(ds.Events))
		for i := range ctxs {
			ctxs[i] = context.Background()
		}
		results, errs := coalesceAll(eng, ctxs, ds.Events)
		for i := range ds.Events {
			if errs[i] != nil {
				t.Fatalf("workers=%d event %d: %v", workers, i, errs[i])
			}
			if len(results[i]) != 1 || !reflect.DeepEqual(results[i][0], baseline[i]) {
				t.Fatalf("workers=%d event %d: coalesced result diverges from serial baseline", workers, i)
			}
		}
		st := eng.Stats()
		if st.CoalescedBatches < 1 || st.CoalescedEvents != int64(len(ds.Events)) {
			t.Fatalf("workers=%d: coalescer counters off: %+v", workers, st)
		}
		if st.CoalescedBatches >= int64(len(ds.Events)) {
			t.Fatalf("workers=%d: no merging happened: %d batches for %d requests", workers, st.CoalescedBatches, st.CoalescedEvents)
		}
		if st.InFlight != 0 {
			t.Fatalf("workers=%d: in-flight not released: %+v", workers, st)
		}
	}
}

// TestCoalescedDisabledDelegates: without WithBatchWindow the coalesced
// entry point is ReconstructBatch, bit for bit, and no batch counters
// move.
func TestCoalescedDisabledDelegates(t *testing.T) {
	ds := testDataset(t, 0.02, 4, 89)
	r, err := recon.New(ds.Spec, recon.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := recon.NewEngine(r, recon.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	want, err := eng.ReconstructBatch(context.Background(), ds.Events)
	if err != nil {
		t.Fatal(err)
	}
	got, err := eng.ReconstructCoalesced(context.Background(), ds.Events)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("disabled coalescer diverges from ReconstructBatch")
	}
	if st := eng.Stats(); st.CoalescedBatches != 0 || st.CoalescedEvents != 0 {
		t.Fatalf("coalescer counters moved while disabled: %+v", st)
	}
}

// TestCoalescedDeadlineInQueue: a request whose deadline expires while
// it waits in the batch window must fail with DeadlineExceeded (the
// server maps that to 503) without poisoning its batchmates, and its
// admission slots must still be released.
func TestCoalescedDeadlineInQueue(t *testing.T) {
	ds := testDataset(t, 0.02, 2, 90)
	r, err := recon.New(ds.Spec, recon.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	baseline := chaosBaseline(t, r, ds.Events)

	eng, err := recon.NewEngine(r,
		recon.WithWorkers(2),
		recon.WithQueueDepth(16),
		recon.WithBatchWindow(250*time.Millisecond), // long window: the doomed unit expires queued
		recon.WithMaxBatchEvents(100),               // never fills early
	)
	if err != nil {
		t.Fatal(err)
	}

	var (
		wg               sync.WaitGroup
		okRes, doomedRes []*recon.Result
		okErr, doomedErr error
	)
	wg.Add(1)
	go func() { // leader: opens the batch, no deadline
		defer wg.Done()
		okRes, okErr = eng.ReconstructCoalesced(context.Background(), ds.Events[:1])
	}()
	// The leader's admission reservation is visible before it can open
	// the batch, so once InFlight moves the doomed request is guaranteed
	// to join as a follower.
	for eng.Stats().InFlight == 0 {
		time.Sleep(time.Millisecond)
	}
	doomedCtx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	doomedRes, doomedErr = eng.ReconstructCoalesced(doomedCtx, ds.Events[1:])
	wg.Wait()

	if !errors.Is(doomedErr, context.DeadlineExceeded) {
		t.Fatalf("queued-expiry error = %v, want DeadlineExceeded", doomedErr)
	}
	// An abandoned wait returns nil results; only if the batch had
	// already finished may a slice come back, and then the expired
	// event's slot must have been skipped, not half-computed.
	for i, res := range doomedRes {
		if res != nil {
			t.Fatalf("expired request got a computed result in slot %d", i)
		}
	}
	if okErr != nil {
		t.Fatalf("batchmate poisoned by sibling's deadline: %v", okErr)
	}
	if len(okRes) != 1 || !reflect.DeepEqual(okRes[0], baseline[0]) {
		t.Fatal("batchmate result diverges from serial baseline")
	}
	st := eng.Stats()
	if st.InFlight != 0 {
		t.Fatalf("in-flight not released after queued expiry: %+v", st)
	}
	if st.CoalescedBatches != 1 || st.CoalescedEvents != 2 {
		t.Fatalf("expected one merged batch of 2 events, got %+v", st)
	}
}

// TestCoalescedChaosPanics: stage panics injected inside a merged batch
// must degrade only the faulted callers — clean callers in the same
// batch stay bit-identical to the fault-free baseline — and the engine
// reconciles its counters.
func TestCoalescedChaosPanics(t *testing.T) {
	ds := testDataset(t, 0.02, 12, 91)
	clean, err := recon.New(ds.Spec, recon.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	baseline := chaosBaseline(t, clean, ds.Events)

	inj, err := faultinject.New(faultinject.Config{Seed: 23, PanicRate: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	chaotic, err := recon.New(ds.Spec, recon.WithSeed(5), recon.WithStageWrapper(inj))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := recon.NewEngine(chaotic,
		recon.WithWorkers(4),
		recon.WithQueueDepth(64),
		recon.WithBatchWindow(5*time.Millisecond),
		recon.WithMaxBatchEvents(6),
	)
	if err != nil {
		t.Fatal(err)
	}

	ctxs := make([]context.Context, len(ds.Events))
	for i := range ctxs {
		ctxs[i] = context.Background()
	}
	results, errs := coalesceAll(eng, ctxs, ds.Events)

	var completed, faulted int
	for i := range ds.Events {
		if errs[i] != nil {
			faulted++
			if se := recon.AsStageError(errs[i]); se == nil || !se.IsPanic() {
				t.Fatalf("event %d: error is not a recovered stage panic: %v", i, errs[i])
			}
			continue
		}
		completed++
		if !reflect.DeepEqual(results[i][0], baseline[i]) {
			t.Fatalf("event %d completed in a chaotic merged batch but diverges from baseline", i)
		}
	}
	if completed == 0 || faulted == 0 {
		t.Fatalf("chaos run not exercising both paths: %d completed, %d faulted (tune seed)", completed, faulted)
	}
	st := eng.Stats()
	if st.PanicsRecovered != inj.Stats().Panics {
		t.Fatalf("engine recovered %d panics, injector fired %d", st.PanicsRecovered, inj.Stats().Panics)
	}
	if st.InFlight != 0 {
		t.Fatalf("in-flight not released after chaotic batch: %+v", st)
	}
}

// TestCoalescedOverload: the coalesced path respects the PR 6 admission
// window — a submission that would overflow it fast-fails with
// ErrOverloaded instead of queueing.
func TestCoalescedOverload(t *testing.T) {
	ds := testDataset(t, 0.02, 3, 92)
	r, err := recon.New(ds.Spec, recon.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := recon.NewEngine(r,
		recon.WithWorkers(1),
		recon.WithQueueDepth(0), // window of exactly one event
		recon.WithBatchWindow(100*time.Millisecond),
		recon.WithMaxBatchEvents(100),
	)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := eng.ReconstructCoalesced(context.Background(), ds.Events[:1]); err != nil {
			t.Errorf("first request: %v", err)
		}
	}()
	// Wait until the first request holds the window, then overflow it.
	for eng.Stats().InFlight == 0 {
		time.Sleep(time.Millisecond)
	}
	if _, err := eng.ReconstructCoalesced(context.Background(), ds.Events[1:]); !errors.Is(err, recon.ErrOverloaded) {
		t.Fatalf("overflow error = %v, want ErrOverloaded", err)
	}
	<-done
	if st := eng.Stats(); st.Rejected != 1 || st.InFlight != 0 {
		t.Fatalf("admission counters off after overload: %+v", st)
	}
}
