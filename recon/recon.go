// Package recon is the composable public API for Exa.TrkX track
// reconstruction. It decomposes the five-stage pipeline of the paper
// (Figure 1) into five small stage interfaces — Embedder, GraphBuilder,
// EdgeFilter, EdgeClassifier, TrackExtractor — wires the repository's
// implementations behind them by default, and lets callers swap any
// stage variant (truth-level graph building, filter-skip ablations,
// custom classifiers) through functional options.
//
// On top of the per-event Reconstructor, Engine executes reconstruction
// concurrently: a worker pool with one workspace arena pinned per worker,
// a batch entry point (ReconstructBatch) whose results are bit-identical
// to serial execution, and a streaming entry point (ReconstructStream)
// with bounded in-flight backpressure. Every entry point takes a
// context.Context for cancellation and timeouts.
//
// Quickstart:
//
//	spec := detectorSpec                      // e.g. repro.Ex3Like(0.05)
//	r, _ := recon.New(spec, recon.WithRadius(0.35), recon.WithThreshold(0.5))
//	_ = r.Fit(ctx, trainEvents)
//	res, _ := r.Reconstruct(ctx, event)
//
//	eng := recon.NewEngine(r, recon.WithWorkers(4))
//	results, _ := eng.ReconstructBatch(ctx, events)
//
// See API.md at the repository root for the full surface, the engine's
// ordering/backpressure/error semantics, and the cmd/serve HTTP front-end.
package recon

import (
	"context"

	"repro/internal/autograd"
	"repro/internal/detector"
	"repro/internal/pipeline"
	"repro/internal/tensor"
	"repro/internal/workspace"
)

// Aliases tying the recon surface to the repository's core types, so
// values flow freely between this package, the repro facade, and the
// training stack without conversion.
type (
	// DetectorSpec describes a dataset family (layers, field, features).
	DetectorSpec = detector.Spec
	// Event is one collision event with hits, features, and truth.
	Event = detector.Event
	// EventGraph is a constructed event graph (stage 1–3 output), the
	// GNN stage's input.
	EventGraph = pipeline.EventGraph
	// Result is full-pipeline inference output with metrics.
	Result = pipeline.Result
	// Matrix is a dense row-major float64 matrix.
	Matrix = tensor.Dense
	// Arena hands out pooled scratch slices; stages allocate
	// intermediate activations from it so hot loops stay allocation-free.
	Arena = workspace.Arena
	// Param is one trainable parameter tensor.
	Param = autograd.Param
)

// Embedder is stage 1: map per-hit features into an embedding space
// where same-track hits land close together. The returned matrix may be
// arena-owned: it is valid only until the arena resets past it.
type Embedder interface {
	Embed(ctx context.Context, a *Arena, ev *Event) (*Matrix, error)
}

// GraphBuilder is stage 2: propose candidate edges for an event.
// Builders that work in embedding space call embed() for the stage-1
// output; builders that do not (e.g. truth-level graphs) skip it, and
// the embedding is never computed.
type GraphBuilder interface {
	BuildEdges(ctx context.Context, a *Arena, ev *Event, embed func() (*Matrix, error)) (src, dst []int, err error)
}

// EdgeFilter is stage 3: prune implausible candidate edges before the
// memory-intensive GNN stage ("Shrink Graph to GPU size" in the paper).
type EdgeFilter interface {
	FilterEdges(ctx context.Context, a *Arena, ev *Event, src, dst []int) (fsrc, fdst []int, err error)
}

// EdgeClassifier is stage 4: score each edge of the constructed graph
// in [0, 1]; scores at or above the decision threshold survive.
type EdgeClassifier interface {
	ScoreEdges(ctx context.Context, a *Arena, eg *EventGraph) ([]float64, error)
}

// TrackExtractor is stage 5: turn the surviving edges into track
// candidates (hit-index sets).
type TrackExtractor interface {
	ExtractTracks(ctx context.Context, eg *EventGraph, keep []bool) ([][]int, error)
}

// Fitter is implemented by custom stages that learn from training
// events; Reconstructor.Fit invokes it. The default stages train through
// the pipeline's staged procedure and do not need it.
type Fitter interface {
	Fit(ctx context.Context, events []*Event) error
}

// Parameterized is implemented by stages with trainable parameters;
// checkpointing walks the stages in order and persists these.
type Parameterized interface {
	Params() []*Param
}
