package recon_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/recon"
)

func testServer(t *testing.T) (*recon.Server, *recon.Reconstructor) {
	t.Helper()
	spec := testDataset(t, 0.02, 1, 1).Spec
	// Truth-level graphs + threshold 0 make an untrained model emit the
	// true connected components as tracks — the serving smoke setup.
	r, err := recon.New(spec,
		recon.WithTruthLevelGraphs(1.0),
		recon.WithThreshold(0),
		recon.WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	eng, err := recon.NewEngine(r, recon.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	return recon.NewServer(eng), r
}

func postJSON(t *testing.T, h http.Handler, path string, body any) *httptest.ResponseRecorder {
	t.Helper()
	blob, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest("POST", path, bytes.NewReader(blob))
	w := httptest.NewRecorder()
	h.ServeHTTP(w, req)
	return w
}

func TestServerSynthetic(t *testing.T) {
	srv, _ := testServer(t)
	w := postJSON(t, srv, "/v1/reconstruct", recon.ReconstructRequest{
		Synthetic: &recon.SyntheticJSON{Count: 2, Seed: 7},
	})
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp recon.ReconstructResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(resp.Results))
	}
	for i, res := range resp.Results {
		if res.Error != "" {
			t.Fatalf("result %d: %s", i, res.Error)
		}
		if res.NumTracks == 0 {
			t.Fatalf("result %d: no tracks from truth-level graphs at threshold 0", i)
		}
	}
}

func TestServerExplicitEventMatchesDirect(t *testing.T) {
	srv, r := testServer(t)
	ds := testDataset(t, 0.02, 1, 55)
	ev := ds.Events[0]
	want, err := r.Reconstruct(context.Background(), ev)
	if err != nil {
		t.Fatal(err)
	}
	w := postJSON(t, srv, "/v1/reconstruct", recon.ReconstructRequest{
		Events: []recon.EventJSON{*recon.EventToJSON(ev)},
	})
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp recon.ReconstructResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 1 {
		t.Fatalf("got %d results", len(resp.Results))
	}
	if resp.Results[0].NumTracks != len(want.Tracks) {
		t.Fatalf("wire event gave %d tracks, direct call %d", resp.Results[0].NumTracks, len(want.Tracks))
	}
	if resp.Results[0].EdgePrecision != want.EdgeCounts.Precision() {
		t.Fatal("wire event metrics diverge from direct call")
	}
}

func TestServerHealthAndStats(t *testing.T) {
	srv, _ := testServer(t)
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, httptest.NewRequest("GET", "/healthz", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("healthz: %d", w.Code)
	}

	postJSON(t, srv, "/v1/reconstruct", recon.ReconstructRequest{
		Synthetic: &recon.SyntheticJSON{Count: 1, Seed: 3},
	})

	w = httptest.NewRecorder()
	srv.ServeHTTP(w, httptest.NewRequest("GET", "/statz", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("statz: %d", w.Code)
	}
	var stats recon.StatsJSON
	if err := json.Unmarshal(w.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Requests < 1 || stats.Events < 1 {
		t.Fatalf("statz counters not advancing: %+v", stats)
	}
	if stats.LatencyP99Ms < stats.LatencyP50Ms {
		t.Fatalf("latency quantiles inverted: %+v", stats)
	}
	if stats.Workers != 2 {
		t.Fatalf("workers = %d, want 2", stats.Workers)
	}
}

func TestServerBadRequests(t *testing.T) {
	srv, _ := testServer(t)
	for name, body := range map[string]any{
		"empty":          recon.ReconstructRequest{},
		"no hits":        recon.ReconstructRequest{Events: []recon.EventJSON{{}}},
		"ragged feature": recon.ReconstructRequest{Events: []recon.EventJSON{{Hits: []recon.HitJSON{{X: 1}}, Features: [][]float64{{1}}}}},
	} {
		if w := postJSON(t, srv, "/v1/reconstruct", body); w.Code != http.StatusBadRequest {
			t.Fatalf("%s: status %d, want 400", name, w.Code)
		}
	}
	req := httptest.NewRequest("POST", "/v1/reconstruct", bytes.NewReader([]byte("{")))
	w := httptest.NewRecorder()
	srv.ServeHTTP(w, req)
	if w.Code != http.StatusBadRequest {
		t.Fatalf("malformed JSON: status %d, want 400", w.Code)
	}
}
