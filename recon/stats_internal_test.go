package recon

import (
	"sync"
	"testing"
	"time"
)

// TestStatsSnapshotDoesNotDisturbRing is the /statz percentile
// regression test (PR 8 satellite): snapshot must sort a copy of the
// latency window taken under the lock — never the live ring buffer.
// Sorting the ring in place would permute slots underneath the writer,
// so some of the new recordings would land on top of relocated old
// values and the window would end up with the wrong value population;
// an unlocked sort additionally races with record. Both failure modes
// are caught here: the test hammers snapshot concurrently with record
// under -race, then counts the surviving values.
func TestStatsSnapshotDoesNotDisturbRing(t *testing.T) {
	const (
		oldLat = 10 * time.Millisecond
		newLat = 20 * time.Millisecond
		writes = latencyWindow / 2
	)
	s := newServerStats()
	for i := 0; i < latencyWindow; i++ {
		s.record(oldLat, 1, false)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := s.snapshot(1, "float64")
				if snap.LatencyP50Ms > snap.LatencyP90Ms || snap.LatencyP90Ms > snap.LatencyP99Ms {
					t.Errorf("quantiles not monotonic: p50=%v p90=%v p99=%v",
						snap.LatencyP50Ms, snap.LatencyP90Ms, snap.LatencyP99Ms)
					return
				}
			}
		}()
	}
	for i := 0; i < writes; i++ {
		s.record(newLat, 1, false)
	}
	close(stop)
	wg.Wait()

	var olds, news int
	s.mu.Lock()
	for _, d := range s.latencies {
		switch d {
		case oldLat:
			olds++
		case newLat:
			news++
		}
	}
	s.mu.Unlock()
	if news != writes || olds != latencyWindow-writes {
		t.Fatalf("ring corrupted by snapshot: %d new / %d old latencies, want %d / %d",
			news, olds, writes, latencyWindow-writes)
	}
}
