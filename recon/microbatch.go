package recon

import (
	"context"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/kernels"
	"repro/internal/workspace"
)

// Request micro-batching (see API.md "Wire format & micro-batching").
//
// The serving tier's per-request cost has two parts: the event's actual
// reconstruction, and the fixed dispatch overhead around it (goroutine
// fan-out, kernel-budget setup, admission bookkeeping). At
// millions-of-users traffic most requests carry one event, so the fixed
// part dominates exactly the way per-batch kernel-launch overhead
// dominated training before bulk sampling. The coalescer amortizes it:
// concurrently-arriving ReconstructCoalesced calls merge into one
// engine batch, dispatched when the batch fills (WithMaxBatchEvents) or
// the batch window elapses (WithBatchWindow), whichever comes first.
//
// The contract mirrors ReconstructBatch:
//   - Determinism: every event is an independent unit of work running
//     the same guarded per-event path, so merged results are bitwise
//     identical to unbatched execution.
//   - Deadlines: each request's WithRequestTimeout clock starts at
//     submission and keeps ticking while the unit waits in the window; a
//     unit whose deadline expires while queued returns
//     context.DeadlineExceeded (HTTP 503) and its unstarted events are
//     skipped at dispatch — batchmates are never poisoned.
//   - Admission: each request reserves its slots in the shared
//     workers+queueDepth window at submission and fast-fails with
//     ErrOverloaded when full; the batch leader releases every unit's
//     slots once the merged batch finishes.
//   - Faults: stage panics isolate into per-event *StageError exactly as
//     in ReconstructBatch; a faulted event degrades one result slot of
//     one unit.
//
// The design is leader-driven — the first request to open a batch waits
// out the window and then executes the merged batch on its own
// goroutine — so an idle engine carries no background coalescer
// goroutine and no Close lifecycle.

// mbUnit is one caller's request riding in a micro-batch.
type mbUnit struct {
	ctx     context.Context // the caller's ctx bounded by the per-request deadline
	events  []*Event
	results []*Result
	err     error // first per-event error of THIS unit, nil if all completed
	done    chan struct{}
}

// mbBatch is one micro-batch accumulating units until dispatch.
type mbBatch struct {
	units  []*mbUnit
	events int
	full   chan struct{} // closed when the batch fills early
	closed bool          // no more joins; guarded by the coalescer lock
}

// coalescer merges concurrent requests into micro-batches.
type coalescer struct {
	mu  sync.Mutex
	cur *mbBatch
}

// join adds a unit to the open batch (starting a new one when none is
// open), reports whether the caller became that batch's leader, and
// closes the batch early once it holds maxEvents events.
func (c *coalescer) join(u *mbUnit, maxEvents int) (*mbBatch, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	b := c.cur
	leader := false
	if b == nil || b.closed {
		b = &mbBatch{full: make(chan struct{})}
		c.cur = b
		leader = true
	}
	b.units = append(b.units, u)
	b.events += len(u.events)
	if b.events >= maxEvents && !b.closed {
		b.closed = true
		close(b.full)
		if c.cur == b {
			c.cur = nil
		}
	}
	return b, leader
}

// seal closes the batch to further joins and returns its final units.
// Only the batch's leader calls it, after the window elapses or the
// batch fills.
func (c *coalescer) seal(b *mbBatch) []*mbUnit {
	c.mu.Lock()
	defer c.mu.Unlock()
	b.closed = true
	if c.cur == b {
		c.cur = nil
	}
	return b.units
}

// ReconstructCoalesced reconstructs a batch through the engine's
// micro-batching layer: with WithBatchWindow enabled, concurrent calls
// merge into one engine batch (results bitwise identical to calling
// ReconstructBatch per request); without it, the call degenerates to
// ReconstructBatch. This is the entry point the HTTP server uses.
//
// Error semantics match ReconstructBatch from each caller's point of
// view: ErrOverloaded when the admission window is full at submission,
// context.DeadlineExceeded when the per-request deadline expires (in
// the window or mid-run), and otherwise the first per-event error of
// this caller's own events — never a batchmate's.
func (e *Engine) ReconstructCoalesced(ctx context.Context, events []*Event) ([]*Result, error) {
	if e.coalescer == nil {
		return e.ReconstructBatch(ctx, events)
	}
	if len(events) == 0 {
		return make([]*Result, 0), ctx.Err()
	}
	if !e.admit(len(events)) {
		return nil, ErrOverloaded
	}
	// The admission slots are released by the batch leader after the
	// merged batch finishes — single-owner accounting that stays correct
	// even when this caller abandons the wait on deadline expiry.
	uctx := ctx
	cancel := context.CancelFunc(func() {})
	if e.timeout > 0 {
		// The deadline clock starts now, so time queued in the batch
		// window counts against it.
		uctx, cancel = context.WithTimeout(ctx, e.timeout)
	}
	defer cancel()
	warmTruth(events) // keep workers read-only on shared *Event values

	u := &mbUnit{
		ctx:     uctx,
		events:  events,
		results: make([]*Result, len(events)),
		done:    make(chan struct{}),
	}
	b, leader := e.coalescer.join(u, e.maxBatchEvents)
	if leader {
		// Wait for company: the batch filling early or the window
		// elapsing. The leader dispatches regardless of its own deadline —
		// its role is structural, and batchmates must not be stranded.
		if !func() bool {
			select {
			case <-b.full:
				return true
			default:
				return false
			}
		}() {
			timer := time.NewTimer(e.batchWindow)
			select {
			case <-b.full:
			case <-timer.C:
			}
			timer.Stop()
		}
		units := e.coalescer.seal(b)
		e.runCoalesced(units)
		total := 0
		for _, unit := range units {
			total += len(unit.events)
		}
		e.coalescedBatches.Add(1)
		e.coalescedEvents.Add(int64(total))
		for _, unit := range units {
			e.inflight.Add(-int64(len(unit.events)))
			close(unit.done)
		}
	}
	select {
	case <-u.done:
		if err := uctx.Err(); err != nil && u.err == nil {
			return u.results, err
		}
		return u.results, u.err
	case <-uctx.Done():
		// Deadline or cancellation while queued (or while batchmates
		// run): return promptly. The leader skips this unit's unstarted
		// events and releases its admission slots; the results slice may
		// still be written by in-flight workers, so it is not returned.
		return nil, uctx.Err()
	}
}

// runCoalesced executes the merged units on the worker pool: one flat
// work list, each event running under its own unit's context with the
// worker's kernel budget installed, through the same guarded per-event
// path as ReconstructBatch.
func (e *Engine) runCoalesced(units []*mbUnit) {
	type item struct {
		u   *mbUnit
		idx int
	}
	var items []item
	for _, u := range units {
		for i := range u.events {
			if u.events[i] != nil { // nil events leave nil result slots
				items = append(items, item{u, i})
			}
		}
	}
	if len(items) == 0 {
		return
	}
	workers := e.workers
	if workers > len(items) {
		workers = len(items)
	}
	var (
		next  atomic.Int64
		errMu sync.Mutex
		wg    sync.WaitGroup
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			arena := workspace.NewArena()
			defer func() { arena.Reset() }()
			budget := kernels.Budget(workers, e.kernelWorkers)
			budget.Tiles = e.tiling
			for {
				k := int(next.Add(1)) - 1
				if k >= len(items) {
					return
				}
				it := items[k]
				if it.u.ctx.Err() != nil {
					// This unit's deadline expired while queued or mid-batch:
					// skip its remaining events. Batchmates keep running.
					continue
				}
				res, err := e.reconstructGuarded(kernels.Into(it.u.ctx, budget), &arena, it.idx, it.u.events[it.idx])
				if err != nil {
					if it.u.ctx.Err() == nil {
						errMu.Lock()
						if it.u.err == nil {
							it.u.err = err
						}
						errMu.Unlock()
					}
					continue
				}
				it.u.results[it.idx] = res
			}
		}()
	}
	wg.Wait()
}
