package recon_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"repro/recon"
)

// shardFleet builds n identically configured engine shards (same spec,
// same seed — bitwise-identical models) behind real HTTP listeners, plus
// a gateway over them.
func shardFleet(t *testing.T, n int, opts ...recon.Option) (*recon.ShardGateway, []*httptest.Server) {
	t.Helper()
	spec := testDataset(t, 0.02, 1, 1).Spec
	servers := make([]*httptest.Server, n)
	urls := make([]string, n)
	for i := range servers {
		r, err := recon.New(spec,
			recon.WithTruthLevelGraphs(1.0),
			recon.WithThreshold(0),
			recon.WithSeed(2))
		if err != nil {
			t.Fatal(err)
		}
		// A deep queue: rerouting concentrates the whole request on the
		// survivors, which must absorb it without tripping admission.
		eng, err := recon.NewEngine(r, recon.WithWorkers(2), recon.WithQueueDepth(16))
		if err != nil {
			t.Fatal(err)
		}
		servers[i] = httptest.NewServer(recon.NewServer(eng))
		urls[i] = servers[i].URL
		t.Cleanup(servers[i].Close)
	}
	gw, err := recon.NewShardGateway(urls, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return gw, servers
}

// resultsOf posts a request and returns the marshaled results array —
// the bitwise unit of the parity guarantee (Elapsed legitimately
// differs between paths and is excluded).
func resultsOf(t *testing.T, h http.Handler, req recon.ReconstructRequest) []byte {
	t.Helper()
	w := postJSON(t, h, "/v1/reconstruct", req)
	if w.Code != http.StatusOK {
		t.Fatalf("status %d: %s", w.Code, w.Body.String())
	}
	var resp recon.ReconstructResponse
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(resp.Results)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestGatewayParityWithDirect is the tentpole acceptance test: the same
// events through 1 gateway / 2 shards produce byte-identical results to
// a direct single-engine server — including after one shard is killed
// and evicted mid-run, when the survivors absorb its keyspace.
func TestGatewayParityWithDirect(t *testing.T) {
	direct, _ := testServer(t)
	gw, shards := shardFleet(t, 2, recon.WithFailThreshold(1), recon.WithProxyTimeout(5*time.Second))

	ds := testDataset(t, 0.02, 4, 55)
	req := recon.ReconstructRequest{}
	for _, ev := range ds.Events {
		req.Events = append(req.Events, *recon.EventToJSON(ev))
	}
	req.Synthetic = &recon.SyntheticJSON{Count: 2, Seed: 9}

	want := resultsOf(t, direct, req)
	if got := resultsOf(t, gw, req); !bytes.Equal(got, want) {
		t.Fatal("gateway results diverge from direct engine (bitwise)")
	}

	// Kill a shard mid-run: the very next request must still answer 200
	// with byte-identical results, rerouted to the survivor, and the dead
	// shard must be evicted (fail threshold 1). Which shard owns which
	// events depends on the servers' ephemeral ports, so kill one that
	// actually received traffic — killing an idle shard would never be
	// noticed without the health loop (not started here).
	victim := 0
	{
		w := httptest.NewRecorder()
		gw.ServeHTTP(w, httptest.NewRequest("GET", "/statz", nil))
		var stats recon.GatewayStatsJSON
		if err := json.Unmarshal(w.Body.Bytes(), &stats); err != nil {
			t.Fatal(err)
		}
		for i, s := range stats.Shards {
			if s.Routed > 0 {
				victim = i
				break
			}
		}
	}
	shards[victim].CloseClientConnections()
	shards[victim].Close()
	if got := resultsOf(t, gw, req); !bytes.Equal(got, want) {
		t.Fatal("results diverged after shard kill (bitwise)")
	}

	w := httptest.NewRecorder()
	gw.ServeHTTP(w, httptest.NewRequest("GET", "/statz", nil))
	var stats recon.GatewayStatsJSON
	if err := json.Unmarshal(w.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	evicted := false
	for _, s := range stats.Shards {
		if s.State == "evicted" {
			evicted = true
		}
	}
	if !evicted {
		t.Fatalf("no shard evicted after kill: %s", w.Body.String())
	}
	if stats.Rerouted == 0 {
		t.Fatal("kill mid-run did not register a reroute")
	}

	// With the dead shard out of the ring, the survivor carries the whole
	// keyspace — still bitwise identical.
	if got := resultsOf(t, gw, req); !bytes.Equal(got, want) {
		t.Fatal("post-eviction results diverge (bitwise)")
	}
}

// TestGatewayStatzShape pins the wire shape of the gateway's /statz:
// gateway counters plus one row per shard.
func TestGatewayStatzShape(t *testing.T) {
	gw, _ := shardFleet(t, 2)
	resultsOf(t, gw, recon.ReconstructRequest{Synthetic: &recon.SyntheticJSON{Count: 1, Seed: 3}})

	w := httptest.NewRecorder()
	gw.ServeHTTP(w, httptest.NewRequest("GET", "/statz", nil))
	if w.Code != http.StatusOK {
		t.Fatalf("statz status %d", w.Code)
	}
	var raw map[string]any
	if err := json.Unmarshal(w.Body.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"uptime_s", "requests", "events", "rejected_requests", "rerouted", "errors", "draining", "shards"} {
		if _, ok := raw[key]; !ok {
			t.Fatalf("statz missing %q: %s", key, w.Body.String())
		}
	}
	shards, ok := raw["shards"].([]any)
	if !ok || len(shards) != 2 {
		t.Fatalf("statz shards: %v", raw["shards"])
	}
	row, ok := shards[0].(map[string]any)
	if !ok {
		t.Fatalf("shard row: %v", shards[0])
	}
	for _, key := range []string{"name", "url", "state", "routed_events", "rejected", "errors", "evictions", "in_flight"} {
		if _, ok := row[key]; !ok {
			t.Fatalf("shard row missing %q: %v", key, row)
		}
	}
	var stats recon.GatewayStatsJSON
	if err := json.Unmarshal(w.Body.Bytes(), &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Requests != 1 || stats.Events != 1 {
		t.Fatalf("counters: %+v", stats)
	}
	var routed int64
	for _, s := range stats.Shards {
		routed += s.Routed
		if s.State != "healthy" {
			t.Fatalf("shard %s state %q, want healthy", s.Name, s.State)
		}
	}
	if routed != 1 {
		t.Fatalf("routed events %d, want 1", routed)
	}
}

// TestGatewayRouting pins the routing properties: the pick is a pure
// function of the key, every shard owns a share of the keyspace, and
// only healthy shards are ever picked.
func TestGatewayRouting(t *testing.T) {
	gw, _ := shardFleet(t, 3)
	hits := make(map[int]int)
	for key := uint64(0); key < 3000; key++ {
		s1, ok := gw.PickShard(key * 0x9E3779B97F4A7C15)
		if !ok {
			t.Fatal("no shard for key")
		}
		s2, _ := gw.PickShard(key * 0x9E3779B97F4A7C15)
		if s1 != s2 {
			t.Fatalf("pick not stable for key %d: %d vs %d", key, s1, s2)
		}
		hits[s1]++
	}
	for i := 0; i < 3; i++ {
		if hits[i] == 0 {
			t.Fatalf("shard %d owns no keyspace: %v", i, hits)
		}
	}
}

// TestGatewayAdmissionContract: shard saturation surfaces as 429 +
// Retry-After (the PR 6 contract, one level up); a fleet with no
// reachable shard surfaces as 503; draining surfaces as 503.
func TestGatewayAdmissionContract(t *testing.T) {
	overloaded := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" {
			w.WriteHeader(http.StatusOK)
			return
		}
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusTooManyRequests)
		_, _ = w.Write([]byte(`{"error":"recon: engine overloaded, admission queue full"}`))
	}))
	defer overloaded.Close()

	gw, err := recon.NewShardGateway([]string{overloaded.URL, overloaded.URL + "/"})
	if err == nil {
		t.Fatal("duplicate shard URLs accepted")
	}
	gw, err = recon.NewShardGateway([]string{overloaded.URL})
	if err != nil {
		t.Fatal(err)
	}
	req := recon.ReconstructRequest{Synthetic: &recon.SyntheticJSON{Count: 1, Seed: 1}}
	w := postJSON(t, gw, "/v1/reconstruct", req)
	if w.Code != http.StatusTooManyRequests {
		t.Fatalf("saturated fleet: status %d, want 429", w.Code)
	}
	if w.Header().Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}

	// A fleet whose only shard is unreachable answers 503.
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()
	gw2, err := recon.NewShardGateway([]string{deadURL}, recon.WithProxyTimeout(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	w = postJSON(t, gw2, "/v1/reconstruct", req)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("dead fleet: status %d, want 503", w.Code)
	}

	// Draining gateway rejects new work with 503 and keeps /healthz at 503.
	gw3, _ := shardFleet(t, 1)
	drainCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := gw3.Shutdown(drainCtx); err != nil {
		t.Fatal(err)
	}
	w = postJSON(t, gw3, "/v1/reconstruct", req)
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining gateway: status %d, want 503", w.Code)
	}
	w = httptest.NewRecorder()
	gw3.ServeHTTP(w, httptest.NewRequest("GET", "/healthz", nil))
	if w.Code != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz: status %d, want 503", w.Code)
	}
}

// TestGatewayRequestHygiene mirrors the single-server 415/413/400
// behavior at the gateway boundary — malformed input never reaches a
// shard.
func TestGatewayRequestHygiene(t *testing.T) {
	gw, _ := shardFleet(t, 1, recon.WithMaxBodyBytes(256))

	req := httptest.NewRequest("POST", "/v1/reconstruct", bytes.NewReader([]byte(`{}`)))
	req.Header.Set("Content-Type", "text/plain")
	w := httptest.NewRecorder()
	gw.ServeHTTP(w, req)
	if w.Code != http.StatusUnsupportedMediaType {
		t.Fatalf("non-JSON content type: status %d, want 415", w.Code)
	}

	// Valid JSON so the decoder hits the byte cap, not a syntax error.
	big := append([]byte(`{"pad":"`), bytes.Repeat([]byte("x"), 512)...)
	big = append(big, `"}`...)
	req = httptest.NewRequest("POST", "/v1/reconstruct", bytes.NewReader(big))
	w = httptest.NewRecorder()
	gw.ServeHTTP(w, req)
	if w.Code != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, want 413", w.Code)
	}

	w = postJSON(t, gw, "/v1/reconstruct", recon.ReconstructRequest{})
	if w.Code != http.StatusBadRequest {
		t.Fatalf("empty request: status %d, want 400", w.Code)
	}
}

// TestGatewayHealthLoopEvictsAndRevives drives eviction through the
// background prober (not the proxy path), then revives the shard.
func TestGatewayHealthLoopEvictsAndRevives(t *testing.T) {
	var healthy atomic.Bool
	healthy.Store(true)
	var backend http.Handler
	shard := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/healthz" && !healthy.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		backend.ServeHTTP(w, r)
	}))
	defer shard.Close()
	backend = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write([]byte(`{"status":"ok"}`))
	})

	gw, err := recon.NewShardGateway([]string{shard.URL},
		recon.WithHealthInterval(5*time.Millisecond),
		recon.WithFailThreshold(2),
		recon.WithProxyTimeout(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	gw.Start(ctx)

	state := func() string {
		w := httptest.NewRecorder()
		gw.ServeHTTP(w, httptest.NewRequest("GET", "/statz", nil))
		var stats recon.GatewayStatsJSON
		if err := json.Unmarshal(w.Body.Bytes(), &stats); err != nil {
			t.Fatal(err)
		}
		return stats.Shards[0].State
	}
	waitFor := func(want string) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for time.Now().Before(deadline) {
			if state() == want {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("shard never became %s (state %s)", want, state())
	}

	waitFor("healthy")
	healthy.Store(false)
	waitFor("evicted")
	healthy.Store(true)
	waitFor("healthy")
}

// TestGatewayServeLifecycle runs the real listener path: Serve on a
// live port, healthz goes ok once a probe lands, and cancelling the
// context drains and returns cleanly.
func TestGatewayServeLifecycle(t *testing.T) {
	gw, servers := shardFleet(t, 1, recon.WithHealthInterval(5*time.Millisecond))
	for _, s := range servers {
		defer s.Close()
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	ctx, cancel := context.WithCancel(context.Background())
	served := make(chan error, 1)
	go func() { served <- gw.Serve(ctx, addr) }()

	if gw.Draining() {
		t.Fatal("draining before shutdown began")
	}
	base := "http://" + addr
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/healthz")
		if err == nil {
			ok := resp.StatusCode == http.StatusOK
			resp.Body.Close()
			if ok {
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("healthz never became ok (last err %v)", err)
		}
		time.Sleep(5 * time.Millisecond)
	}

	resp, err := http.Get(base + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	var stats recon.GatewayStatsJSON
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(stats.Shards) != 1 {
		t.Fatalf("statz over the wire: %d shard rows, want 1", len(stats.Shards))
	}

	cancel()
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("Serve: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after cancel")
	}
	if !gw.Draining() {
		t.Fatal("gateway should report draining after shutdown")
	}
}
