package recon

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/detector"
	"repro/internal/embed"
	"repro/internal/filter"
	"repro/internal/ignn"
	"repro/internal/kernels"
	"repro/internal/knnsearch"
	"repro/internal/nn"
	"repro/internal/pipeline"
	"repro/internal/rng"
	"repro/internal/tensor"
	"repro/internal/workspace"
)

// i8Scales bundles the calibrated activation scales of every default
// stage — the tables syncInference builds the quantized snapshots from
// and checkpoint v4 persists.
type i8Scales struct {
	embed  []float32
	filter []float32
	gnn    ignn.QuantScales
}

// Activation-scale table names used in v4 checkpoints. The gnn.edge%d /
// gnn.node%d families are indexed by message-passing step.
const (
	actEmbed      = "embed"
	actFilter     = "filter"
	actGNNNodeEnc = "gnn.nodeEnc"
	actGNNEdgeEnc = "gnn.edgeEnc"
	actGNNHead    = "gnn.head"
	actGNNAgg     = "gnn.agg"
)

// actScales flattens the stage tables into the named form checkpoint v4
// stores. The aggregation table is omitted when the GNN has a single
// step (no aggregations happen, and v4 rejects empty tables).
func (s *i8Scales) actScales() []nn.ActScales {
	act := []nn.ActScales{
		{Name: actEmbed, Scales: s.embed},
		{Name: actFilter, Scales: s.filter},
		{Name: actGNNNodeEnc, Scales: s.gnn.NodeEnc},
		{Name: actGNNEdgeEnc, Scales: s.gnn.EdgeEnc},
	}
	for l, sc := range s.gnn.EdgeNets {
		act = append(act, nn.ActScales{Name: fmt.Sprintf("gnn.edge%d", l), Scales: sc})
	}
	for l, sc := range s.gnn.NodeNets {
		act = append(act, nn.ActScales{Name: fmt.Sprintf("gnn.node%d", l), Scales: sc})
	}
	act = append(act, nn.ActScales{Name: actGNNHead, Scales: s.gnn.Head})
	if len(s.gnn.Agg) > 0 {
		act = append(act, nn.ActScales{Name: actGNNAgg, Scales: s.gnn.Agg})
	}
	return act
}

// i8ScalesFromAct rebuilds the stage tables from a v4 checkpoint's
// activation section, validating that every table the configured model
// shape needs is present. Per-layer counts are validated downstream by
// the quantized constructors.
func i8ScalesFromAct(act []nn.ActScales, steps int) (*i8Scales, error) {
	byName := make(map[string][]float32, len(act))
	for _, a := range act {
		byName[a.Name] = a.Scales
	}
	get := func(name string) ([]float32, error) {
		sc, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("recon: checkpoint is missing activation-scale table %q", name)
		}
		return sc, nil
	}
	s := &i8Scales{}
	var err error
	if s.embed, err = get(actEmbed); err != nil {
		return nil, err
	}
	if s.filter, err = get(actFilter); err != nil {
		return nil, err
	}
	if s.gnn.NodeEnc, err = get(actGNNNodeEnc); err != nil {
		return nil, err
	}
	if s.gnn.EdgeEnc, err = get(actGNNEdgeEnc); err != nil {
		return nil, err
	}
	if s.gnn.Head, err = get(actGNNHead); err != nil {
		return nil, err
	}
	for l := 0; l < steps; l++ {
		sc, err := get(fmt.Sprintf("gnn.edge%d", l))
		if err != nil {
			return nil, err
		}
		s.gnn.EdgeNets = append(s.gnn.EdgeNets, sc)
	}
	for l := 0; l < steps-1; l++ {
		sc, err := get(fmt.Sprintf("gnn.node%d", l))
		if err != nil {
			return nil, err
		}
		s.gnn.NodeNets = append(s.gnn.NodeNets, sc)
	}
	if steps > 1 {
		if s.gnn.Agg, err = get(actGNNAgg); err != nil {
			return nil, err
		}
		if len(s.gnn.Agg) != steps-1 {
			return nil, fmt.Errorf("recon: checkpoint has %d aggregation scales for %d GNN steps", len(s.gnn.Agg), steps)
		}
	}
	return s, nil
}

// calibrationEvents returns the representative events the automatic
// calibration pass runs over: the most recent Fit's training events
// when available, else a small deterministic synthetic batch drawn from
// the detector spec — so an untrained Int8 reconstructor (CI smoke
// serving, pre-checkpoint construction) always has valid scales.
func (r *Reconstructor) calibrationEvents() []*Event {
	if len(r.calEvents) > 0 {
		return r.calEvents
	}
	rr := rng.New(uint64(r.set.seed) ^ 0x1BADCA1)
	evs := make([]*Event, 2)
	for i := range evs {
		evs[i] = detector.GenerateEvent(r.spec, rr.Split())
	}
	return evs
}

// calibrate runs the activation-range calibration pass over events:
// the float32 forward of every default stage replays with observers
// recording per-linear-layer input ranges (plus the GNN's aggregation
// ranges), while non-default stages — truth-level or custom builders
// and filters — run as themselves so the observed graph distribution
// matches what int8 inference will actually see.
func (r *Reconstructor) calibrate(ctx context.Context, events []*Event) (*i8Scales, error) {
	embCal := embed.NewCalibrator(r.p.Embedder)
	filtCal := filter.NewCalibrator(r.p.Filter)
	gnnCal := ignn.NewCalibrator(r.p.GNN)
	a := workspace.NewArena()
	defer a.Reset()
	kctx := r.kernelCtx(ctx)
	kc := kernels.From(kctx)
	for _, ev := range events {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		mark := a.Checkpoint()
		feat := features32(a, ev)
		emb := embCal.Observe(kc, a, feat)

		var src, dst []int
		var err error
		if _, ok := r.builder.(radiusBuilder8); ok {
			src, dst = knnsearch.BuildRadiusGraphCtx(kc, emb, r.cfg.Radius, r.cfg.MaxDegree)
		} else {
			thunk := func() (*Matrix, error) {
				if _, ok := r.embedder.(mlpEmbedder8); ok {
					return tensor.ConvertFrom[float64](nil, emb), nil
				}
				return r.embedder.Embed(kctx, a, ev)
			}
			if src, dst, err = r.builder.BuildEdges(kctx, a, ev, thunk); err != nil {
				return nil, fmt.Errorf("recon: calibration build edges: %w", err)
			}
		}

		var fsrc, fdst []int
		if _, ok := r.filter.(mlpFilter8); ok {
			if len(src) > 0 {
				edgeFeat := detector.EdgeFeaturesWith(a, r.spec, ev, src, dst)
				scores := filtCal.Observe(kc, a, feat, tensor.ConvertFrom[float32](a, edgeFeat), src, dst)
				for k, s := range scores {
					if s >= filtCal.Threshold() {
						fsrc = append(fsrc, src[k])
						fdst = append(fdst, dst[k])
					}
				}
			}
		} else if fsrc, fdst, err = r.filter.FilterEdges(kctx, a, ev, src, dst); err != nil {
			return nil, fmt.Errorf("recon: calibration filter edges: %w", err)
		}

		if len(fsrc) > 0 {
			eg := pipeline.AssembleGraph(r.spec, ev, fsrc, fdst)
			x := tensor.ConvertFrom[float32](a, eg.X)
			y := tensor.ConvertFrom[float32](a, eg.Y)
			gnnCal.Observe(kc, a, eg.G.Src, eg.G.Dst, x, y)
		}
		a.ResetTo(mark)
	}
	return &i8Scales{embed: embCal.Scales(), filter: filtCal.Scales(), gnn: gnnCal.Scales()}, nil
}

// Calibrate re-runs int8 activation-range calibration on the given
// events and rebuilds the quantized inference snapshots from the fresh
// scales. Fit and LoadCheckpoint (v4) manage calibration automatically;
// call this to recalibrate on a different representative sample. Like
// Fit, it must not race concurrent inference. At Float64/Float32 the
// scales are recorded but unused until the precision changes.
func (r *Reconstructor) Calibrate(ctx context.Context, events []*Event) error {
	if len(events) == 0 {
		return errors.New("recon: Calibrate needs at least one event")
	}
	sc, err := r.calibrate(ctx, events)
	if err != nil {
		return err
	}
	r.calEvents = events
	r.i8scales = sc
	return r.syncInference()
}

// SaveCheckpointInt8 writes a v4 quantized checkpoint: int8 weights
// with per-output-column scales plus the calibrated activation-scale
// tables (calibrating first if no calibration has run yet), so the file
// serves at Int8 on load without recalibration. Works at any precision
// — a float64-trained reconstructor can export its int8 artifact
// directly.
func (r *Reconstructor) SaveCheckpointInt8(path string) error {
	sc := r.i8scales
	if sc == nil {
		var err error
		if sc, err = r.calibrate(context.Background(), r.calibrationEvents()); err != nil {
			return err
		}
		r.i8scales = sc
	}
	return nn.SaveParamsFileInt8(path, r.params(), sc.actScales())
}
