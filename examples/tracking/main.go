// Command tracking runs the full five-stage Exa.TrkX pipeline on a
// CTD-like workload — the dense LHC tracking scenario that motivates the
// paper — and reports per-stage graph quality and final track metrics.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// CTD-like events: 14 hit features, 8 edge features, denser tracks.
	spec := repro.CTDLike(0.0025) // ~80 particles/event at laptop scale
	spec.NumEvents = 8
	ds := repro.GenerateDataset(spec, 17)
	train, val, test := ds.Split(0.75, 0.125)
	stats := ds.ComputeStats()
	fmt.Printf("=== %s-like workload ===\n", spec.Name)
	fmt.Printf("events=%d avg_hits=%.0f avg_truth_edges=%.0f features=%d/%d\n\n",
		stats.Graphs, stats.AvgVertices, stats.AvgTruthEdges,
		stats.VertexFeatures, stats.EdgeFeatures)

	cfg := repro.DefaultPipelineConfig(spec)
	cfg.GNN.Hidden = 24
	cfg.GNN.Steps = 3
	p := repro.NewPipeline(cfg, 5)

	// Stages 1-3.
	fmt.Println("training embedding + filter stages...")
	if err := p.TrainStages13(train, 23); err != nil {
		log.Fatal(err)
	}
	for _, ev := range val {
		eg := p.BuildGraph(ev)
		eff, pur := eg.GraphQuality()
		fmt.Printf("  built graph: %d vertices %d edges, edge efficiency=%.3f purity=%.3f\n",
			eg.NumVertices(), eg.NumEdges(), eff, pur)
	}

	// Stage 4: GNN training on constructed graphs.
	fmt.Println("training interaction GNN stage...")
	var graphs []*repro.EventGraph
	for _, ev := range train {
		graphs = append(graphs, p.BuildGraph(ev))
	}
	loss := p.TrainGNN(graphs, 15, 3e-3, 2.0)
	fmt.Printf("  final loss %.4f\n", loss)

	// Stage 5 + evaluation on held-out events.
	fmt.Println("\n=== held-out reconstruction ===")
	for i, ev := range test {
		res := p.Reconstruct(ev)
		fmt.Printf("event %d: %d candidates | edge P=%.3f R=%.3f | track eff=%.3f fake=%.3f\n",
			i, len(res.Tracks),
			res.EdgeCounts.Precision(), res.EdgeCounts.Recall(),
			res.Match.Efficiency(), res.Match.FakeRate())
	}
}
