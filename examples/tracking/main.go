// Command tracking runs the full five-stage Exa.TrkX pipeline on a
// CTD-like workload — the dense LHC tracking scenario that motivates the
// paper — through the recon API, reporting per-stage graph quality,
// final track metrics, and multi-worker engine throughput.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro"
	"repro/recon"
)

func main() {
	ctx := context.Background()

	// CTD-like events: 14 hit features, 8 edge features, denser tracks.
	spec := repro.CTDLike(0.0025) // ~80 particles/event at laptop scale
	spec.NumEvents = 8
	ds := repro.GenerateDataset(spec, 17)
	train, val, test := ds.Split(0.75, 0.125)
	stats := ds.ComputeStats()
	fmt.Printf("=== %s-like workload ===\n", spec.Name)
	fmt.Printf("events=%d avg_hits=%.0f avg_truth_edges=%.0f features=%d/%d\n\n",
		stats.Graphs, stats.AvgVertices, stats.AvgTruthEdges,
		stats.VertexFeatures, stats.EdgeFeatures)

	r, err := recon.New(spec,
		recon.WithGNN(24, 3),
		recon.WithGNNTraining(15, 3e-3, 2.0),
		recon.WithSeed(5),
	)
	if err != nil {
		log.Fatal(err)
	}

	// Train all learned stages (embedding, filter, GNN).
	fmt.Println("training the learned stages...")
	if err := r.Fit(ctx, train); err != nil {
		log.Fatal(err)
	}
	for _, ev := range val {
		eg, err := r.BuildGraph(ctx, ev)
		if err != nil {
			log.Fatal(err)
		}
		eff, pur := eg.GraphQuality()
		fmt.Printf("  built graph: %d vertices %d edges, edge efficiency=%.3f purity=%.3f\n",
			eg.NumVertices(), eg.NumEdges(), eff, pur)
	}

	// Held-out reconstruction, concurrently through the engine.
	fmt.Println("\n=== held-out reconstruction (engine, 4 workers) ===")
	eng, err := recon.NewEngine(r, recon.WithWorkers(4))
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	results, err := eng.ReconstructBatch(ctx, test)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)
	for i, res := range results {
		fmt.Printf("event %d: %d candidates | edge P=%.3f R=%.3f | track eff=%.3f fake=%.3f\n",
			i, len(res.Tracks),
			res.EdgeCounts.Precision(), res.EdgeCounts.Recall(),
			res.Match.Efficiency(), res.Match.FakeRate())
	}
	fmt.Printf("\nbatch of %d events in %v (%.1f events/s)\n",
		len(test), elapsed.Round(time.Millisecond),
		float64(len(test))/elapsed.Seconds())
}
