// Command distributed demonstrates the paper's distributed-training
// optimizations: GNN training sharded across simulated GPUs with ShaDow
// minibatch sampling, comparing the PyG-style baseline (sequential
// per-batch sampling + per-matrix all-reduce) against the paper's
// pipeline (matrix-based bulk sampling + coalesced all-reduce).
package main

import (
	"fmt"

	"repro"
)

func main() {
	o := repro.ExperimentOptions{
		Scale:  0.03,
		Events: 6,
		Hidden: 16,
		Steps:  3,
	}

	fmt.Println("=== epoch time across simulated GPU counts (Figure 3 shape) ===")
	rows := repro.RunFigure3(o, []int{1, 2, 4})
	for _, r := range rows {
		fmt.Println(" ", r)
	}
	fmt.Println("\nspeedup of ours vs PyG baseline:")
	for p, s := range repro.Figure3Speedups(rows) {
		fmt.Printf("  p=%d: %.2fx\n", p, s)
	}

	fmt.Println("\n=== all-reduce strategies (§III-D) ===")
	for _, r := range repro.RunAllReduceAblation(o, []int{2, 4, 8}, 10) {
		fmt.Printf("  p=%-2d %-10s collectives=%-4d modeled=%v\n",
			r.Procs, r.Strategy, r.Collectives, r.ModeledTime)
	}
}
