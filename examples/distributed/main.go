// Command distributed demonstrates the paper's distributed-training
// optimizations: GNN training sharded across simulated GPUs with ShaDow
// minibatch sampling, comparing the PyG-style baseline (sequential
// per-batch sampling + per-matrix all-reduce) against the paper's
// pipeline (matrix-based bulk sampling + coalesced all-reduce). Ctrl-C
// cancels the sweep and prints whatever rows completed.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"os/signal"

	"repro"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	o := repro.ExperimentOptions{
		Scale:  0.03,
		Events: 6,
		Hidden: 16,
		Steps:  3,
	}

	fmt.Println("=== epoch time across simulated GPU counts (Figure 3 shape) ===")
	rows, err := repro.Figure3(ctx, o, []int{1, 2, 4})
	for _, r := range rows {
		fmt.Println(" ", r)
	}
	if err != nil {
		log.Fatalf("sweep interrupted: %v", err)
	}
	fmt.Println("\nspeedup of ours vs PyG baseline:")
	for p, s := range repro.Figure3Speedups(rows) {
		fmt.Printf("  p=%d: %.2fx\n", p, s)
	}

	fmt.Println("\n=== all-reduce strategies (§III-D) ===")
	arRows, err := repro.AllReduceAblation(ctx, o, []int{2, 4, 8}, 10)
	for _, r := range arRows {
		fmt.Printf("  p=%-2d %-10s collectives=%-4d modeled=%v\n",
			r.Procs, r.Strategy, r.Collectives, r.ModeledTime)
	}
	if err != nil {
		log.Fatalf("ablation interrupted: %v", err)
	}
}
