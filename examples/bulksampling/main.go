// Command bulksampling demonstrates the matrix-based bulk ShaDow sampler
// (Figure 2 of the paper): it shows that the matrix formulation and the
// standard Algorithm 2 sampler produce structurally identical subgraphs,
// that the SpGEMM extraction step matches the edge-list assembly, and how
// bulk sampling throughput scales with the number of stacked minibatches.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"repro/internal/detector"
	"repro/internal/rng"
	"repro/internal/sampling"
	"repro/recon"
)

func main() {
	// Build one event graph to sample from, using the recon truth-level
	// builder (ground-truth edges plus 1.5 random fakes per true edge).
	spec := detector.Ex3Like(0.15) // ~200 particles → ~2000 hits
	spec.NumEvents = 1
	ds := detector.Generate(spec, 3)
	rec, err := recon.New(spec, recon.WithTruthLevelGraphs(1.5), recon.WithSeed(4))
	if err != nil {
		log.Fatal(err)
	}
	eg, err := rec.BuildGraph(context.Background(), ds.Events[0])
	if err != nil {
		log.Fatal(err)
	}
	eidx := sampling.NewEdgeIndex(eg.G)
	fmt.Printf("event graph: %d vertices, %d edges\n\n", eg.NumVertices(), eg.NumEdges())

	cfg := sampling.DefaultConfig() // depth 3, fanout 6 (paper setting)
	r := rng.New(1)
	batch := r.SampleWithoutReplacement(eg.NumVertices(), 256)

	// Standard (Algorithm 2) vs matrix (Figure 2) samplers.
	std := sampling.StandardShaDow(eg.G, eidx, batch, cfg, r.Split())
	mtx := sampling.MatrixShaDow(eg.G, eidx, batch, cfg, r.Split())
	fmt.Println("=== sampler comparison (batch of 256 roots) ===")
	fmt.Printf("standard: %4d vertices %5d edges %d components\n",
		std.NumVertices(), std.NumEdges(), std.Components)
	fmt.Printf("matrix:   %4d vertices %5d edges %d components\n",
		mtx.NumVertices(), mtx.NumEdges(), mtx.Components)

	// The paper's extraction: row/column-selection SpGEMMs vs edge lists.
	var sets [][]int
	for i := 0; i < len(mtx.Roots); i++ {
		end := mtx.NumVertices()
		if i+1 < len(mtx.Roots) {
			end = mtx.Roots[i+1]
		}
		sets = append(sets, mtx.Vertices[mtx.Roots[i]:end])
	}
	viaSpGEMM := sampling.ExtractComponentsSpGEMM(eg.G, sets)
	viaEdges := sampling.SubgraphAdjacency(mtx)
	fmt.Printf("\nSpGEMM extraction == edge-list assembly: %v (A_S is %dx%d, %d nnz)\n",
		viaSpGEMM.Equal(viaEdges), viaSpGEMM.Rows(), viaSpGEMM.Cols(), viaSpGEMM.Nnz())

	// Bulk throughput: sampling k batches per invocation.
	fmt.Println("\n=== bulk sampling throughput ===")
	for _, k := range []int{1, 2, 4, 8} {
		batches := make([][]int, k)
		for i := range batches {
			batches[i] = r.SampleWithoutReplacement(eg.NumVertices(), 256)
		}
		start := time.Now()
		const reps = 3
		for rep := 0; rep < reps; rep++ {
			sampling.BulkMatrixShaDow(eg.G, eidx, batches, cfg, r.Split())
		}
		perBatch := time.Since(start) / time.Duration(reps*k)
		fmt.Printf("  k=%d: %v per minibatch\n", k, perBatch.Round(time.Microsecond))
	}
}
