// Command quickstart is the smallest end-to-end use of the library:
// simulate collision events, train the learned pipeline stages, and
// reconstruct particle tracks on a held-out event.
package main

import (
	"fmt"
	"log"

	"repro"
)

func main() {
	// 1. Simulate a small Ex3-like dataset: 10 events, ~60 particles each.
	spec := repro.Ex3Like(0.05)
	spec.NumEvents = 10
	ds := repro.GenerateDataset(spec, 42)
	train, _, test := ds.Split(0.8, 0.1)
	fmt.Printf("dataset %s: %d events, %.0f hits/event on average\n",
		spec.Name, len(ds.Events), ds.ComputeStats().AvgVertices)

	// 2. Train stages 1-3 (embedding + graph construction + filter).
	cfg := repro.DefaultPipelineConfig(spec)
	cfg.GNN.Hidden = 16
	cfg.GNN.Steps = 3
	p := repro.NewPipeline(cfg, 7)
	if err := p.TrainStages13(train, 11); err != nil {
		log.Fatal(err)
	}

	// 3. Train the GNN stage (stage 4) full-graph for a few epochs.
	var graphs []*repro.EventGraph
	for _, ev := range train {
		graphs = append(graphs, p.BuildGraph(ev))
	}
	loss := p.TrainGNN(graphs, 20, 3e-3, 2.0)
	fmt.Printf("GNN trained, final loss %.4f\n", loss)

	// 4. Reconstruct tracks on the held-out event (stages 1-5).
	res := p.Reconstruct(test[0])
	fmt.Printf("reconstructed %d track candidates\n", len(res.Tracks))
	fmt.Printf("edge classification: precision=%.3f recall=%.3f\n",
		res.EdgeCounts.Precision(), res.EdgeCounts.Recall())
	fmt.Printf("track finding: efficiency=%.3f fake rate=%.3f\n",
		res.Match.Efficiency(), res.Match.FakeRate())
}
