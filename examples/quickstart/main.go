// Command quickstart is the smallest end-to-end use of the library:
// simulate collision events, compose a reconstructor from the recon
// package, train its learned stages, and reconstruct particle tracks
// on a held-out event.
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
	"repro/recon"
)

func main() {
	ctx := context.Background()

	// 1. Simulate a small Ex3-like dataset: 10 events, ~60 particles each.
	spec := repro.Ex3Like(0.05)
	spec.NumEvents = 10
	ds := repro.GenerateDataset(spec, 42)
	train, _, test := ds.Split(0.8, 0.1)
	fmt.Printf("dataset %s: %d events, %.0f hits/event on average\n",
		spec.Name, len(ds.Events), ds.ComputeStats().AvgVertices)

	// 2. Compose the five-stage reconstructor. Functional options replace
	// the old nested config structs: here we shrink the GNN to laptop
	// scale and pin the deterministic initialization seed. Any stage can
	// be swapped (recon.WithTruthLevelGraphs, recon.WithoutEdgeFilter,
	// recon.WithEdgeClassifier, ...).
	r, err := recon.New(spec,
		recon.WithGNN(16, 3),
		recon.WithGNNTraining(20, 3e-3, 2.0),
		recon.WithSeed(7),
	)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Fit trains every learned stage: the embedding MLP, the edge
	// filter on radius graphs in the trained embedding space, and the
	// Interaction GNN on the graphs the configured builder produces. The
	// context cancels long runs cooperatively.
	if err := r.Fit(ctx, train); err != nil {
		log.Fatal(err)
	}
	fmt.Println("learned stages trained")

	// 4. Reconstruct tracks on the held-out event (stages 1-5). For
	// batches and streams, wrap the reconstructor in a recon.Engine with
	// recon.WithWorkers(n) — results are bit-identical to this serial
	// call at any worker count.
	res, err := r.Reconstruct(ctx, test[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reconstructed %d track candidates\n", len(res.Tracks))
	fmt.Printf("edge classification: precision=%.3f recall=%.3f\n",
		res.EdgeCounts.Precision(), res.EdgeCounts.Recall())
	fmt.Printf("track finding: efficiency=%.3f fake rate=%.3f\n",
		res.Match.Efficiency(), res.Match.FakeRate())

	// 5. Serve the same trained model at float32: the weights convert
	// once, every per-event kernel then moves half the bytes, and the
	// track metrics match f64 within the documented tolerance (API.md
	// "Precision"). The checkpoint round-trip mirrors how cmd/serve
	// -precision f32 deploys a model trained elsewhere.
	ckpt := "quickstart.ckpt.gz"
	if err := r.SaveCheckpoint(ckpt); err != nil {
		log.Fatal(err)
	}
	r32, err := recon.New(spec,
		recon.WithGNN(16, 3),
		recon.WithSeed(7),
		recon.WithPrecision(recon.Float32),
	)
	if err != nil {
		log.Fatal(err)
	}
	if err := r32.LoadCheckpoint(ckpt); err != nil {
		log.Fatal(err)
	}
	res32, err := r32.Reconstruct(ctx, test[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("float32 serving path: %d tracks, efficiency=%.3f (f64: %.3f)\n",
		len(res32.Tracks), res32.Match.Efficiency(), res.Match.Efficiency())

	// 6. Cache-blocked kernel layouts are on by default: every
	// reconstructor above already ran the packed-panel tiled GEMM at
	// the autotuned process defaults (and column-banded aggregation
	// wherever the sweep chose a band), with results bit-identical to
	// the flat kernels. recon.WithTiling overrides the shapes — e.g. to
	// pin tiles measured by `cmd/bench -tile-sweep` on a specific host,
	// or (negative fields) to fall back to the flat kernels when
	// comparing. Passing recon.DefaultTiling() explicitly, as here,
	// changes nothing.
	rt, err := recon.New(spec,
		recon.WithGNN(16, 3),
		recon.WithSeed(7),
		recon.WithTiling(recon.DefaultTiling()),
	)
	if err != nil {
		log.Fatal(err)
	}
	if err := rt.LoadCheckpoint(ckpt); err != nil {
		log.Fatal(err)
	}
	resT, err := rt.Reconstruct(ctx, test[0])
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tiled kernels (default): %d tracks — identical to step 4: %v\n",
		len(resT.Tracks), len(resT.Tracks) == len(res.Tracks))
}
