// Package repro is the public API of this reproduction of "Scaling Graph
// Neural Networks for Particle Track Reconstruction" (Tripathy et al.,
// IPPS 2025, arXiv:2504.04670).
//
// The library provides, built entirely on the Go standard library:
//
//   - A synthetic barrel-detector event generator standing in for the
//     paper's CTD and Ex3 datasets (GenerateDataset with CTDLike/Ex3Like).
//   - The five-stage Exa.TrkX pipeline behind the composable repro/recon
//     package: five swappable stage interfaces, functional options, a
//     context-aware Reconstructor, and a concurrent Engine with an HTTP
//     front-end (cmd/serve).
//   - The paper's contribution: minibatch GNN training with ShaDow
//     subgraph sampling, matrix-based bulk sampling, and a coalesced
//     all-reduce for distributed data parallelism over simulated devices
//     (NewTrainer with PyGBaselineConfig/OursConfig).
//   - Experiment harnesses regenerating every table and figure of the
//     paper's evaluation (Table1, Figure3, Figure4, and the *Ablation
//     functions, all context-aware).
//
// Quickstart (see API.md for the full recon surface):
//
//	spec := repro.Ex3Like(0.05)
//	spec.NumEvents = 10
//	ds := repro.GenerateDataset(spec, 42)
//	train, _, test := ds.Split(0.8, 0.1)
//	r, _ := recon.New(spec, recon.WithGNN(16, 3), recon.WithSeed(1))
//	_ = r.Fit(ctx, train)
//	res, _ := r.Reconstruct(ctx, test[0])
//	fmt.Println("track efficiency:", res.Match.Efficiency())
//
// The pipeline-centric constructors below (NewPipeline,
// DefaultPipelineConfig) remain as thin deprecated shims for one
// release; new code should use repro/recon.
//
// See the examples/ directory for runnable programs.
package repro

import (
	"context"

	"repro/internal/core"
	"repro/internal/ddp"
	"repro/internal/detector"
	"repro/internal/dtrain"
	"repro/internal/experiments"
	"repro/internal/ignn"
	"repro/internal/metrics"
	"repro/internal/pipeline"
	"repro/internal/rng"
	"repro/internal/sampling"
	"repro/internal/trackio"
)

func rngNew(seed uint64) *rng.Rand { return rng.New(seed) }

// Dataset types and generation.
type (
	// DetectorSpec describes a synthetic dataset family (layers, field,
	// kinematics, feature widths).
	DetectorSpec = detector.Spec
	// Dataset is a generated set of collision events.
	Dataset = detector.Dataset
	// Event is one collision event with hits, features, and truth.
	Event = detector.Event
	// Hit is one recorded detector measurement.
	Hit = detector.Hit
	// DatasetStats summarizes a dataset for Table I.
	DatasetStats = detector.Stats
)

// CTDLike returns the CTD-like dataset spec (Table I: 14 vertex features,
// 8 edge features, 3 MLP layers). scale=1 targets paper-sized events.
func CTDLike(scale float64) DetectorSpec { return detector.CTDLike(scale) }

// Ex3Like returns the Ex3-like dataset spec (Table I: 6 vertex features,
// 2 edge features, 2 MLP layers).
func Ex3Like(scale float64) DetectorSpec { return detector.Ex3Like(scale) }

// GenerateDataset simulates spec.NumEvents collision events from seed.
func GenerateDataset(spec DetectorSpec, seed uint64) *Dataset {
	return detector.Generate(spec, seed)
}

// SaveDataset writes a dataset to disk (gzip-compressed gob).
func SaveDataset(path string, ds *Dataset) error { return trackio.Save(path, ds) }

// LoadDataset reads a dataset written by SaveDataset.
func LoadDataset(path string) (*Dataset, error) { return trackio.Load(path) }

// Pipeline types.
type (
	// Pipeline is the five-stage Exa.TrkX reconstruction pipeline.
	Pipeline = pipeline.Pipeline
	// PipelineConfig collects pipeline hyperparameters.
	PipelineConfig = pipeline.Config
	// EventGraph is a constructed event graph, the GNN stage's input.
	EventGraph = pipeline.EventGraph
	// Result is full-pipeline inference output with metrics.
	Result = pipeline.Result
	// GNNConfig describes the Interaction GNN.
	GNNConfig = ignn.Config
	// InteractionGNN is the paper's GNN model (Algorithm 1).
	InteractionGNN = ignn.Model
)

// DefaultPipelineConfig returns a laptop-scale pipeline configuration for
// a dataset spec.
//
// Deprecated: use recon.New with functional options (recon.WithRadius,
// recon.WithThreshold, recon.WithGNN, ...) instead of mutating nested
// config structs. This shim remains for one release.
func DefaultPipelineConfig(spec DetectorSpec) PipelineConfig {
	return pipeline.DefaultConfig(spec)
}

// NewPipeline creates an untrained pipeline with deterministic
// initialization.
//
// Deprecated: use recon.New (fresh models) or adapt an existing
// pipeline with recon.FromPipeline. This shim remains for one release.
func NewPipeline(cfg PipelineConfig, seed uint64) *Pipeline { return pipeline.New(cfg, seed) }

// NewInteractionGNN builds a standalone Interaction GNN.
func NewInteractionGNN(cfg GNNConfig, seed uint64) *InteractionGNN {
	return ignn.New(cfg, rngNew(seed))
}

// Training types (the paper's contribution).
type (
	// TrainerConfig configures GNN-stage training.
	TrainerConfig = core.Config
	// Trainer trains Interaction GNN replicas under simulated DDP.
	Trainer = core.Trainer
	// EpochStats reports one epoch (loss, phase times, skips, bulk k).
	EpochStats = core.EpochStats
	// ShadowConfig holds ShaDow sampling hyperparameters.
	ShadowConfig = sampling.Config
	// TrainingHistory is a per-epoch convergence record.
	TrainingHistory = metrics.History
	// BinaryCounts is a confusion-count summary with precision/recall.
	BinaryCounts = metrics.BinaryCounts
	// TrackMatch is the double-majority track matching summary.
	TrackMatch = metrics.TrackMatch
)

// Training modes and sampler kinds.
const (
	// FullGraph trains on whole event graphs (original Exa.TrkX).
	FullGraph = core.FullGraph
	// Minibatch trains on ShaDow-sampled vertex batches (the paper).
	Minibatch = core.Minibatch
	// SamplerStandard is the sequential Algorithm 2 sampler (PyG baseline).
	SamplerStandard = core.SamplerStandard
	// SamplerMatrixBulk is the paper's matrix-based bulk sampler.
	SamplerMatrixBulk = core.SamplerMatrixBulk
)

// Distributed training (the end-to-end composition of bulk sampling and
// coalesced collectives; see repro/recon.TrainDistributed for the
// option-based front-end).
type (
	// SyncStrategy selects the DDP gradient synchronization pattern.
	SyncStrategy = ddp.SyncStrategy
	// DistTrainerConfig configures the distributed bulk-sampled trainer.
	DistTrainerConfig = dtrain.Config
	// DistTrainer trains IGNN replicas across P rank goroutines with
	// bulk-sampled ShaDow minibatches and a bitwise rank-count-invariant
	// loss trajectory.
	DistTrainer = dtrain.Trainer
	// DistEpochStats reports one distributed epoch.
	DistEpochStats = dtrain.EpochStats
	// DistCommStats summarizes charged collective traffic.
	DistCommStats = dtrain.CommStats
)

// The gradient synchronization strategies.
const (
	// PerMatrixSync all-reduces each parameter matrix separately.
	PerMatrixSync = ddp.PerMatrix
	// CoalescedSync reduces one flattened buffer — the paper's choice.
	CoalescedSync = ddp.Coalesced
	// BucketedSync reduces buckets overlapped with the backward pass.
	BucketedSync = ddp.Bucketed
)

// DefaultDistTrainerConfig returns paper-shaped distributed-trainer
// defaults for a GNN configuration.
func DefaultDistTrainerConfig(gnn GNNConfig) DistTrainerConfig { return dtrain.DefaultConfig(gnn) }

// NewDistTrainer builds the distributed bulk-sampled trainer.
func NewDistTrainer(cfg DistTrainerConfig) *DistTrainer { return dtrain.New(cfg) }

// DefaultTrainerConfig mirrors the paper's training hyperparameters.
func DefaultTrainerConfig(gnn GNNConfig) TrainerConfig { return core.DefaultConfig(gnn) }

// PyGBaselineConfig configures the paper's baseline (standard sampler,
// per-matrix all-reduce) for the given simulated device count.
func PyGBaselineConfig(gnn GNNConfig, procs int) TrainerConfig {
	return core.PyGBaselineConfig(gnn, procs)
}

// OursConfig configures the paper's optimized pipeline (matrix bulk
// sampler, coalesced all-reduce).
func OursConfig(gnn GNNConfig, procs int) TrainerConfig { return core.OursConfig(gnn, procs) }

// NewTrainer builds a trainer with identically initialized replicas.
func NewTrainer(cfg TrainerConfig) *Trainer { return core.NewTrainer(cfg) }

// Experiment harnesses (Table I, Figures 3 and 4, ablations).
type (
	// ExperimentOptions configures an experiment run; zero values pick
	// laptop-scale defaults.
	ExperimentOptions = experiments.Options
	// Table1Row is one dataset row of Table I.
	Table1Row = experiments.Table1Row
	// EpochTimeRow is one stacked bar of Figure 3.
	EpochTimeRow = experiments.EpochTimeRow
	// ConvergenceResult holds the three curves of Figure 4.
	ConvergenceResult = experiments.ConvergenceResult
	// AllReduceRow is one point of the all-reduce ablation.
	AllReduceRow = experiments.AllReduceRow
	// BulkKRow is one point of the bulk batch count ablation.
	BulkKRow = experiments.BulkKRow
	// FanoutRow is one point of the ShaDow hyperparameter ablation.
	FanoutRow = experiments.FanoutRow
	// BatchSizeRow is one point of the batch-size ablation.
	BatchSizeRow = experiments.BatchSizeRow
)

// Table1 regenerates Table I at the configured scale. Cancelling the
// context returns the rows completed so far alongside ctx.Err().
func Table1(ctx context.Context, o ExperimentOptions) ([]Table1Row, error) {
	return experiments.RunTable1Context(ctx, o)
}

// Figure3 regenerates Figure 3 (epoch time across process counts),
// checking the context between measurement cells.
func Figure3(ctx context.Context, o ExperimentOptions, procs []int) ([]EpochTimeRow, error) {
	return experiments.RunFigure3Context(ctx, o, procs)
}

// Figure3Speedups pairs Figure 3 rows into per-P speedups of Ours vs PyG.
func Figure3Speedups(rows []EpochTimeRow) map[int]float64 { return experiments.Speedups(rows) }

// Figure4 regenerates Figure 4 (convergence of full-graph vs ShaDow
// minibatch training), checking the context between the three runs.
func Figure4(ctx context.Context, o ExperimentOptions) (*ConvergenceResult, error) {
	return experiments.RunFigure4Context(ctx, o)
}

// AllReduceAblation measures per-matrix vs coalesced all-reduce cost.
func AllReduceAblation(ctx context.Context, o ExperimentOptions, procs []int, steps int) ([]AllReduceRow, error) {
	return experiments.RunAllReduceAblationContext(ctx, o, procs, steps)
}

// BulkKAblation sweeps the bulk batch count.
func BulkKAblation(ctx context.Context, o ExperimentOptions, ks []int) ([]BulkKRow, error) {
	return experiments.RunBulkKAblationContext(ctx, o, ks)
}

// FanoutAblation sweeps ShaDow (depth, fanout).
func FanoutAblation(ctx context.Context, o ExperimentOptions, pairs [][2]int) ([]FanoutRow, error) {
	return experiments.RunFanoutAblationContext(ctx, o, pairs)
}

// BatchSizeAblation sweeps the training batch size.
func BatchSizeAblation(ctx context.Context, o ExperimentOptions, sizes []int) ([]BatchSizeRow, error) {
	return experiments.RunBatchSizeAblationContext(ctx, o, sizes)
}

// Deprecated shims: the pre-context experiment entry points, kept for
// one release. New code should call the context-aware versions above.

// RunTable1 regenerates Table I at the configured scale.
//
// Deprecated: use Table1.
func RunTable1(o ExperimentOptions) []Table1Row { return experiments.RunTable1(o) }

// RunFigure3 regenerates Figure 3 (epoch time across process counts).
//
// Deprecated: use Figure3.
func RunFigure3(o ExperimentOptions, procs []int) []EpochTimeRow {
	return experiments.RunFigure3(o, procs)
}

// RunFigure4 regenerates Figure 4 (convergence of full-graph vs ShaDow
// minibatch training).
//
// Deprecated: use Figure4.
func RunFigure4(o ExperimentOptions) *ConvergenceResult { return experiments.RunFigure4(o) }

// RunAllReduceAblation measures per-matrix vs coalesced all-reduce cost.
//
// Deprecated: use AllReduceAblation.
func RunAllReduceAblation(o ExperimentOptions, procs []int, steps int) []AllReduceRow {
	return experiments.RunAllReduceAblation(o, procs, steps)
}

// RunBulkKAblation sweeps the bulk batch count.
//
// Deprecated: use BulkKAblation.
func RunBulkKAblation(o ExperimentOptions, ks []int) []BulkKRow {
	return experiments.RunBulkKAblation(o, ks)
}

// RunFanoutAblation sweeps ShaDow (depth, fanout).
//
// Deprecated: use FanoutAblation.
func RunFanoutAblation(o ExperimentOptions, pairs [][2]int) []FanoutRow {
	return experiments.RunFanoutAblation(o, pairs)
}

// RunBatchSizeAblation sweeps the training batch size.
//
// Deprecated: use BatchSizeAblation.
func RunBatchSizeAblation(o ExperimentOptions, sizes []int) []BatchSizeRow {
	return experiments.RunBatchSizeAblation(o, sizes)
}
